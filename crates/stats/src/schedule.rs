//! Arrival schedules and the shared delivery cost model.
//!
//! Before this module existed, three layers each priced source delivery
//! with their own ad-hoc rule: the optimizer added a uniform
//! `remaining / rate` term to scan costs, the federation scheduler hedged
//! on silence alone, and the fragmentation pass compared a delivery bound
//! against a bare CPU threshold. The paper's premise — one stream of
//! runtime observations drives *every* adaptive decision — wants a single
//! model instead, and this module is it:
//!
//! * [`ArrivalSchedule`] — when tuples of one relation arrive: piecewise
//!   constant-rate segments built from [`RateEstimator`] history (a
//!   burst-allowance lead-in from the observed gap variance, then the
//!   observed steady rate), with a single uniform segment as the
//!   degenerate case. The uniform case reproduces the legacy
//!   `card / rate · 1e6` bound *bit-for-bit* (pinned by a property test),
//!   so plans costed from uniform schedules are unchanged from the
//!   pre-model system.
//! * [`DeliveryModel`] — the three questions every consumer used to
//!   approximate separately:
//!   1. **when does the k-th tuple arrive** ([`DeliveryModel::arrival_us`]),
//!   2. **what does overlapping this delivery with that much CPU buy**
//!      ([`DeliveryModel::overlap_residual_us`] /
//!      [`DeliveryModel::overlap_win_us`]),
//!   3. **what does racing a second copy cost**
//!      ([`DeliveryModel::race`]: duplicate-tuple dedup work, queue
//!      backpressure, and one more busy core, weighed against the
//!      expected latency win).
//!
//! Consumers: the optimizer's scan/join costing (overlap-aware delivery
//! terms, so join order can hide slow deliveries under CPU-heavy
//! subtrees), the federation scheduler's cost-gated hedging, and the
//! fragmentation pass's cut pricing.

use std::collections::HashMap;

use crate::rate::RateEstimator;

/// One piecewise segment of an [`ArrivalSchedule`]: from `start_us`
/// (timeline µs from "now") the source delivers at
/// `rate_tuples_per_sec`; the final segment extends forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// Offset from now (µs) at which this segment begins.
    pub start_us: f64,
    /// Delivery rate inside the segment (tuples per timeline second). A
    /// zero rate models silence (a burst gap, a cold start).
    pub rate_tuples_per_sec: f64,
}

/// Piecewise-constant-rate forecast of one relation's tuple arrivals,
/// anchored at "now".
///
/// ```
/// use tukwila_stats::schedule::ArrivalSchedule;
///
/// // A uniform 1000 tuples/s source: the 500th tuple arrives at 0.5s.
/// let s = ArrivalSchedule::uniform(1000.0);
/// assert_eq!(s.arrival_us(500.0), 500_000.0);
///
/// // The same source behind a 200ms burst gap: everything shifts.
/// let bursty = ArrivalSchedule::bursty(200_000.0, 1000.0);
/// assert_eq!(bursty.arrival_us(500.0), 700_000.0);
/// assert_eq!(bursty.tuples_by(300_000.0), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSchedule {
    /// Non-empty; `start_us` strictly increasing, first segment at 0.
    segments: Vec<RateSegment>,
}

impl ArrivalSchedule {
    /// The degenerate single-segment schedule: tuples arrive at a
    /// constant `rate` (tuples per timeline second) starting now. This is
    /// what an observed cumulative rate alone justifies, and what the
    /// legacy uniform delivery bound assumed for every source.
    pub fn uniform(rate_tuples_per_sec: f64) -> ArrivalSchedule {
        ArrivalSchedule {
            segments: vec![RateSegment {
                start_us: 0.0,
                rate_tuples_per_sec: rate_tuples_per_sec.max(0.0),
            }],
        }
    }

    /// A burst-aware schedule: silence for `lead_in_us`, then delivery at
    /// `rate`. The lead-in is the planning allowance for "we may be at
    /// the start of one of this source's ordinary gaps"; `lead_in_us <= 0`
    /// degenerates to [`ArrivalSchedule::uniform`].
    pub fn bursty(lead_in_us: f64, rate_tuples_per_sec: f64) -> ArrivalSchedule {
        if lead_in_us <= 0.0 {
            return ArrivalSchedule::uniform(rate_tuples_per_sec);
        }
        ArrivalSchedule {
            segments: vec![
                RateSegment {
                    start_us: 0.0,
                    rate_tuples_per_sec: 0.0,
                },
                RateSegment {
                    start_us: lead_in_us,
                    rate_tuples_per_sec: rate_tuples_per_sec.max(0.0),
                },
            ],
        }
    }

    /// Build from explicit segments. Returns `None` unless segments are
    /// non-empty, start at 0, and have strictly increasing offsets.
    pub fn from_segments(segments: Vec<RateSegment>) -> Option<ArrivalSchedule> {
        if segments.first().map(|s| s.start_us) != Some(0.0) {
            return None;
        }
        if segments.windows(2).any(|w| w[1].start_us <= w[0].start_us) {
            return None;
        }
        if segments.iter().any(|s| {
            !s.start_us.is_finite()
                || !s.rate_tuples_per_sec.is_finite()
                || s.rate_tuples_per_sec < 0.0
        }) {
            return None;
        }
        Some(ArrivalSchedule { segments })
    }

    /// Build from an online [`RateEstimator`]: the observed cumulative
    /// rate as the steady segment, behind a one-σ(gap) burst allowance
    /// lead-in. A smooth source (σ ≈ 0) degenerates to the uniform
    /// schedule; a bursty one is planned as if a typical gap were about
    /// to happen. `None` until the estimator has a rate window.
    pub fn from_estimator(est: &RateEstimator) -> Option<ArrivalSchedule> {
        let rate = est.rate_tuples_per_sec()?;
        Some(ArrivalSchedule::bursty(est.gap_std_us(), rate))
    }

    /// The segments, for display/serialization.
    pub fn segments(&self) -> &[RateSegment] {
        &self.segments
    }

    /// Steady-state rate: the final segment's rate (tuples per second).
    /// This is what gets republished as the scalar "observed rate".
    pub fn steady_rate_tuples_per_sec(&self) -> f64 {
        self.segments
            .last()
            .map(|s| s.rate_tuples_per_sec)
            .unwrap_or(0.0)
    }

    /// **Question 1**: timeline µs from now until the `k`-th tuple has
    /// arrived. `k <= 0` arrives immediately; a schedule ending in
    /// silence never delivers (`f64::INFINITY`).
    ///
    /// The single-uniform-segment case evaluates the exact legacy
    /// expression `k.max(0.0) / rate * 1e6`, so plans costed from uniform
    /// schedules are bit-identical to the pre-model system.
    pub fn arrival_us(&self, k: f64) -> f64 {
        if self.segments.len() == 1 {
            let rate = self.segments[0].rate_tuples_per_sec;
            if rate > 0.0 {
                return k.max(0.0) / rate * 1e6;
            }
            return if k > 0.0 { f64::INFINITY } else { 0.0 };
        }
        let mut remaining = k.max(0.0);
        if remaining == 0.0 {
            return 0.0;
        }
        for (i, seg) in self.segments.iter().enumerate() {
            let rate = seg.rate_tuples_per_sec;
            match self.segments.get(i + 1) {
                Some(next) => {
                    let span_us = next.start_us - seg.start_us;
                    let delivered = rate * span_us / 1e6;
                    if delivered >= remaining && rate > 0.0 {
                        return seg.start_us + remaining / rate * 1e6;
                    }
                    remaining -= delivered;
                }
                None => {
                    if rate > 0.0 {
                        return seg.start_us + remaining / rate * 1e6;
                    }
                    return f64::INFINITY;
                }
            }
        }
        unreachable!("segments are non-empty");
    }

    /// Inverse of [`ArrivalSchedule::arrival_us`]: tuples expected to
    /// have arrived by `t_us` µs from now.
    pub fn tuples_by(&self, t_us: f64) -> f64 {
        let mut total = 0.0;
        for (i, seg) in self.segments.iter().enumerate() {
            if t_us <= seg.start_us {
                break;
            }
            let end = self
                .segments
                .get(i + 1)
                .map(|n| n.start_us.min(t_us))
                .unwrap_or(t_us);
            total += seg.rate_tuples_per_sec * (end - seg.start_us) / 1e6;
        }
        total
    }

    /// **Question 2** (schedule form): residual delivery wait for `k`
    /// tuples after `overlap_cpu_us` µs of useful CPU ran concurrently
    /// with the delivery.
    pub fn residual_wait_us(&self, k: f64, overlap_cpu_us: f64) -> f64 {
        residual_wait_us(self.arrival_us(k), overlap_cpu_us)
    }
}

/// The residual delivery wait after hiding `cpu_us` of concurrent useful
/// CPU under a `wait_us` delivery wait. This single formula is what every
/// overlap consumer uses — the optimizer's join costing, the
/// fragmentation pass, and [`DeliveryModel::overlap_residual_us`] — so
/// the three layers cannot drift apart.
pub fn residual_wait_us(wait_us: f64, cpu_us: f64) -> f64 {
    (wait_us - cpu_us.max(0.0)).max(0.0)
}

/// The µs of delivery wait actually *hidden* by `cpu_us` of concurrent
/// CPU (never more than either side; an unbounded wait is hidden up to
/// the full CPU time). Companion of [`residual_wait_us`]; used by the
/// fragmentation pass's cut pricing and [`DeliveryModel::overlap_win_us`].
pub fn hidden_wait_us(wait_us: f64, cpu_us: f64) -> f64 {
    let cpu = cpu_us.max(0.0);
    if wait_us.is_infinite() {
        cpu
    } else {
        wait_us.min(cpu)
    }
}

/// Unit prices of the hidden costs of racing a second source copy.
/// Shared by the hedging gate and (for the exchange term) the
/// fragmentation pass. All values are timeline µs.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryCosts {
    /// CPU µs to receive and dedup one duplicate tuple a racing replica
    /// re-delivers.
    pub dup_tuple_us: f64,
    /// Penalty µs per queue-backpressure event already observed
    /// (`blocked_sends`): a consumer that cannot keep up gains nothing
    /// from more producers.
    pub blocked_send_us: f64,
    /// Penalty µs for occupying one more core when the host has no idle
    /// one left for the new producer thread.
    pub busy_core_us: f64,
}

impl Default for DeliveryCosts {
    fn default() -> Self {
        DeliveryCosts {
            dup_tuple_us: 0.5,
            blocked_send_us: 200.0,
            busy_core_us: 20_000.0,
        }
    }
}

impl DeliveryCosts {
    /// The documented cost-unit→µs conversion the default prices above
    /// were derived under (the optimizer `CostModel::unit_us` fallback).
    pub const DEFAULT_UNIT_US: f64 = 0.1;

    /// Unit prices re-derived for a host whose *measured* cost-unit→µs
    /// conversion is `unit_us` (the corrective warmup calibration runs
    /// the engine's actual kernels — columnar dedup, exchange shipping —
    /// and measures driver µs per cost unit). The dup-dedup and
    /// backpressure terms are engine work and scale with that measured
    /// per-unit time; the busy-core term prices scheduler contention,
    /// not kernel speed, and stays put. The scale is clamped so one wild
    /// calibration cannot push the hedge gate into a corner.
    pub fn from_unit_us(unit_us: f64) -> DeliveryCosts {
        let base = DeliveryCosts::default();
        let scale = (unit_us / Self::DEFAULT_UNIT_US).clamp(0.05, 20.0);
        DeliveryCosts {
            dup_tuple_us: base.dup_tuple_us * scale,
            blocked_send_us: base.blocked_send_us * scale,
            busy_core_us: base.busy_core_us,
        }
    }
}

/// Everything the race question needs to know about the current state of
/// one federated relation. Pure data, so decisions are replayable.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceContext {
    /// The best *healthy* (active, delivering within its own profile)
    /// candidate: its expected µs to deliver the remaining tuples, and
    /// its steady rate. `None` when every active candidate has violated
    /// its profile — there is nobody credible left to wait for.
    pub healthy: Option<(f64, f64)>,
    /// Distinct tuples already delivered to the engine. A freshly
    /// activated full mirror re-delivers all of them (sequential access,
    /// no rewind), which is both dedup waste and a head start it lacks.
    pub delivered: f64,
    /// Expected tuples still to come.
    pub remaining: f64,
    /// Declared/prior rate of the standby being considered (tuples per
    /// second); `None` falls back to the healthy candidate's rate (the
    /// mirror assumption).
    pub standby_rate_tps: Option<f64>,
    /// Queue-backpressure events observed so far (threaded mode; 0 in
    /// sequential mode, which has no queues).
    pub blocked_sends: u64,
    /// Producer threads already racing for this relation.
    pub racing: usize,
    /// Host parallelism budget; `None` means unknown/not-threaded, which
    /// disables the busy-core term.
    pub cores: Option<usize>,
}

/// Outcome of the race question, with the two sides of the break-even
/// inequality exposed for reports and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceDecision {
    /// Whether starting the race is expected to pay.
    pub hedge: bool,
    /// Expected latency win (µs): healthy ETA minus standby ETA.
    pub win_us: f64,
    /// Expected waste (µs): dedup work + backpressure + core contention.
    pub waste_us: f64,
}

/// The shared delivery cost model: per-relation [`ArrivalSchedule`]s plus
/// the [`DeliveryCosts`] unit prices. One instance answers the three
/// questions for every consumer (optimizer, hedging scheduler,
/// fragmentation pass), replacing their three one-off rules.
#[derive(Debug, Clone, Default)]
pub struct DeliveryModel {
    schedules: HashMap<u32, ArrivalSchedule>,
    costs: DeliveryCosts,
}

impl DeliveryModel {
    /// An empty model with the given unit prices.
    pub fn with_costs(costs: DeliveryCosts) -> DeliveryModel {
        DeliveryModel {
            schedules: HashMap::new(),
            costs,
        }
    }

    /// Register (or replace) a relation's schedule.
    pub fn insert(&mut self, rel: u32, schedule: ArrivalSchedule) {
        self.schedules.insert(rel, schedule);
    }

    /// The registered schedule for a relation, if any.
    pub fn schedule(&self, rel: u32) -> Option<&ArrivalSchedule> {
        self.schedules.get(&rel)
    }

    /// The unit prices this model was built with.
    pub fn costs(&self) -> &DeliveryCosts {
        &self.costs
    }

    /// Whether any relation has a schedule (unprofiled models answer 0
    /// everywhere, the local/fast seed assumption).
    pub fn is_empty(&self) -> bool {
        self.schedules.is_empty()
    }

    /// **Question 1**: µs until the `k`-th tuple of `rel` arrives. Zero
    /// for unprofiled relations (assumed local/fast, the seed behavior).
    pub fn arrival_us(&self, rel: u32, k: f64) -> f64 {
        self.schedules.get(&rel).map_or(0.0, |s| s.arrival_us(k))
    }

    /// **Question 2**: residual delivery wait for `k` tuples of `rel`
    /// after `overlap_cpu_us` of concurrent useful CPU.
    pub fn overlap_residual_us(&self, rel: u32, k: f64, overlap_cpu_us: f64) -> f64 {
        residual_wait_us(self.arrival_us(rel, k), overlap_cpu_us)
    }

    /// What overlapping buys: the µs of delivery wait actually hidden by
    /// `overlap_cpu_us` of concurrent CPU (never more than either side).
    pub fn overlap_win_us(&self, rel: u32, k: f64, overlap_cpu_us: f64) -> f64 {
        hidden_wait_us(self.arrival_us(rel, k), overlap_cpu_us)
    }

    /// **Question 3**: is racing a second copy worth it?
    ///
    /// The break-even inequality: hedge iff
    ///
    /// ```text
    /// win   = eta_healthy(remaining) − (delivered + remaining) / standby_rate · 1e6
    /// waste = delivered · dup_tuple_us
    ///       + blocked_sends · blocked_send_us
    ///       + busy_core_us   (when racing + 1 exceeds the core budget)
    /// hedge ⇔ win > waste
    /// ```
    ///
    /// With no healthy active candidate (`ctx.healthy == None`) the win
    /// is unbounded — there is nobody credible to wait for, so the hedge
    /// always fires; this is what preserves liveness when the sole active
    /// candidate dies, and reproduces the legacy rule exactly in the
    /// one-primary-stalls case.
    pub fn race(&self, ctx: &RaceContext) -> RaceDecision {
        let waste_us = ctx.delivered.max(0.0) * self.costs.dup_tuple_us
            + ctx.blocked_sends as f64 * self.costs.blocked_send_us
            + match ctx.cores {
                Some(cores) if ctx.racing + 1 > cores => self.costs.busy_core_us,
                _ => 0.0,
            };
        let Some((healthy_eta_us, healthy_rate)) = ctx.healthy else {
            return RaceDecision {
                hedge: true,
                win_us: f64::INFINITY,
                waste_us,
            };
        };
        let standby_rate = ctx
            .standby_rate_tps
            .filter(|r| *r > 0.0)
            .unwrap_or(healthy_rate);
        let standby_eta_us = if standby_rate > 0.0 {
            (ctx.delivered + ctx.remaining).max(0.0) / standby_rate * 1e6
        } else {
            f64::INFINITY
        };
        let win_us = healthy_eta_us - standby_eta_us;
        RaceDecision {
            hedge: win_us > waste_us,
            win_us,
            waste_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_legacy_bound_bitwise() {
        for rate in [0.001f64, 1.0, 997.3, 1e6] {
            for card in [0.0f64, 1.0, 12_345.0, 2.5e8] {
                let legacy = card.max(0.0) / rate * 1e6;
                let s = ArrivalSchedule::uniform(rate);
                assert_eq!(s.arrival_us(card).to_bits(), legacy.to_bits());
            }
        }
        assert_eq!(ArrivalSchedule::uniform(1000.0).arrival_us(-5.0), 0.0);
    }

    #[test]
    fn bursty_shifts_by_lead_in() {
        let s = ArrivalSchedule::bursty(10_000.0, 100.0);
        assert_eq!(s.arrival_us(1.0), 10_000.0 + 10_000.0);
        assert_eq!(s.tuples_by(5_000.0), 0.0);
        assert_eq!(s.tuples_by(10_000.0 + 1e6), 100.0);
        assert_eq!(s.steady_rate_tuples_per_sec(), 100.0);
        // Zero lead-in degenerates to uniform.
        assert_eq!(
            ArrivalSchedule::bursty(0.0, 100.0),
            ArrivalSchedule::uniform(100.0)
        );
    }

    #[test]
    fn silent_tail_never_delivers() {
        let s = ArrivalSchedule::from_segments(vec![
            RateSegment {
                start_us: 0.0,
                rate_tuples_per_sec: 1000.0,
            },
            RateSegment {
                start_us: 1_000.0,
                rate_tuples_per_sec: 0.0,
            },
        ])
        .unwrap();
        // One ms at 1000/s = 1 tuple, then silence forever.
        assert!(s.arrival_us(1.0).is_finite());
        assert!(s.arrival_us(2.0).is_infinite());
        assert_eq!(s.tuples_by(f64::MAX), 1.0);
    }

    #[test]
    fn from_segments_validates() {
        assert!(ArrivalSchedule::from_segments(vec![]).is_none());
        assert!(ArrivalSchedule::from_segments(vec![RateSegment {
            start_us: 5.0,
            rate_tuples_per_sec: 1.0
        }])
        .is_none());
        assert!(ArrivalSchedule::from_segments(vec![
            RateSegment {
                start_us: 0.0,
                rate_tuples_per_sec: 1.0
            },
            RateSegment {
                start_us: 0.0,
                rate_tuples_per_sec: 2.0
            },
        ])
        .is_none());
    }

    #[test]
    fn estimator_schedule_smooth_vs_bursty() {
        let mut smooth = RateEstimator::new(0.2);
        let mut bursty = RateEstimator::new(0.2);
        let mut t = 0u64;
        for i in 0..200u64 {
            smooth.observe_arrival(i * 1_000, 10);
            t += if i % 10 == 9 { 10_000 } else { 100 };
            bursty.observe_arrival(t, 10);
        }
        let s = ArrivalSchedule::from_estimator(&smooth).unwrap();
        let b = ArrivalSchedule::from_estimator(&bursty).unwrap();
        assert_eq!(s.segments().len(), 1, "smooth source: uniform schedule");
        assert_eq!(b.segments().len(), 2, "bursty source: gap allowance");
        assert!(b.arrival_us(1.0) > s.arrival_us(1.0));
        assert_eq!(
            ArrivalSchedule::from_estimator(&RateEstimator::new(0.2)),
            None
        );
    }

    #[test]
    fn overlap_win_and_residual() {
        let mut m = DeliveryModel::default();
        m.insert(7, ArrivalSchedule::uniform(1000.0)); // 1 tuple per ms
        assert_eq!(m.arrival_us(7, 100.0), 100_000.0);
        // 40ms of CPU hides 40ms of a 100ms wait.
        assert_eq!(m.overlap_residual_us(7, 100.0, 40_000.0), 60_000.0);
        assert_eq!(m.overlap_win_us(7, 100.0, 40_000.0), 40_000.0);
        // CPU beyond the wait buys nothing extra.
        assert_eq!(m.overlap_win_us(7, 100.0, 500_000.0), 100_000.0);
        // Unprofiled relation: no wait, nothing to win.
        assert_eq!(m.arrival_us(99, 100.0), 0.0);
        assert_eq!(m.overlap_win_us(99, 100.0, 40_000.0), 0.0);
    }

    #[test]
    fn race_with_no_healthy_candidate_always_hedges() {
        let m = DeliveryModel::default();
        let d = m.race(&RaceContext {
            healthy: None,
            delivered: 1e9,
            remaining: 1.0,
            standby_rate_tps: None,
            blocked_sends: 1000,
            racing: 64,
            cores: Some(1),
        });
        assert!(d.hedge, "nobody credible to wait for: hedge");
        assert!(d.win_us.is_infinite());
        assert!(d.waste_us > 0.0);
    }

    #[test]
    fn race_declines_when_healthy_candidate_beats_standby() {
        let m = DeliveryModel::default();
        // Healthy mirror finishes the remaining 1000 tuples in 100ms; a
        // from-scratch standby at the same rate must re-deliver the 9000
        // already-delivered ones first.
        let d = m.race(&RaceContext {
            healthy: Some((100_000.0, 10_000.0)),
            delivered: 9_000.0,
            remaining: 1_000.0,
            standby_rate_tps: None,
            blocked_sends: 0,
            racing: 1,
            cores: None,
        });
        assert!(!d.hedge, "win={} waste={}", d.win_us, d.waste_us);
        assert!(d.win_us < 0.0);
    }

    #[test]
    fn race_accepts_a_fast_declared_standby() {
        let m = DeliveryModel::default();
        // Healthy candidate limps at 100 t/s (10s for the remaining 1000);
        // the standby declares 100k t/s and redelivers 2000 tuples in 20ms.
        let d = m.race(&RaceContext {
            healthy: Some((10_000_000.0, 100.0)),
            delivered: 1_000.0,
            remaining: 1_000.0,
            standby_rate_tps: Some(100_000.0),
            blocked_sends: 0,
            racing: 1,
            cores: None,
        });
        assert!(d.hedge);
        assert!(d.win_us > 0.0);
    }

    #[test]
    fn race_charges_backpressure_and_busy_cores() {
        let m = DeliveryModel::default();
        let base = RaceContext {
            healthy: Some((200_000.0, 10_000.0)),
            delivered: 0.0,
            remaining: 1_000.0,
            standby_rate_tps: Some(20_000.0),
            blocked_sends: 0,
            racing: 1,
            cores: Some(8),
        };
        let free = m.race(&base);
        assert!(free.hedge, "win={} waste={}", free.win_us, free.waste_us);
        let congested = m.race(&RaceContext {
            blocked_sends: 10_000,
            ..base.clone()
        });
        assert!(!congested.hedge, "backpressure must veto the race");
        let saturated = m.race(&RaceContext { racing: 8, ..base });
        assert!(saturated.waste_us >= m.costs().busy_core_us);
    }
}
