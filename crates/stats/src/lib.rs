#![warn(missing_docs)]

//! Runtime statistics for adaptive query processing (paper §3.3, §4.2,
//! §4.5).
//!
//! Tukwila's adaptivity is driven by information the executor gathers while
//! a query runs:
//!
//! * [`counters::OpCounters`] — the per-operator output counters every query
//!   operator maintains ("we found that this had no measurable performance
//!   penalty", §3.3).
//! * [`selectivity::SelectivityCatalog`] — observed subexpression
//!   selectivities, recorded once per *logical* subexpression and shared
//!   across all plans (§4.2), source-cardinality extrapolation, and the
//!   "multiplicative join" flags.
//! * [`histogram::DynamicHistogram`] — incremental histograms in the spirit
//!   of the Dynamic Compressed histograms the paper cites (\[7\]): range
//!   buckets plus exact counts for heavy hitters, maintainable per-tuple.
//! * [`order_detect::OrderDetector`] / [`order_detect::UniquenessDetector`]
//!   — streaming detection of sort order and key uniqueness (§4.5).
//! * [`estimate::JoinEstimator`] — combines histograms and order detection
//!   to predict join output cardinalities from a prefix of the data, the
//!   §4.5 experiment.
//! * [`rate::RateEstimator`] — online delivery-rate/burstiness profiling of
//!   a source; drives the federation layer's stall thresholds and the
//!   re-optimizer's delivery-bound costing.
//! * [`schedule::ArrivalSchedule`] / [`schedule::DeliveryModel`] — the
//!   shared delivery cost model built from those profiles: when the k-th
//!   tuple arrives, what overlapping delivery with CPU buys, and what
//!   racing a second source copy costs. One model serves the optimizer's
//!   scan/join costing, the federation scheduler's cost-gated hedging,
//!   and the fragmentation pass.
//! * [`clock::Clock`] — the dual-clock timeline ([`clock::VirtualClock`]
//!   simulated / [`clock::WallClock`] real, optionally accelerated) that
//!   every timestamp above is measured against, so the same adaptive
//!   logic runs deterministically in tests and on real threads in
//!   production.

pub mod arbiter;
pub mod clock;
pub mod counters;
pub mod estimate;
pub mod histogram;
pub mod order_detect;
pub mod rate;
pub mod schedule;
pub mod selectivity;
pub mod trace;

pub use arbiter::{CoreArbiter, QueryLease};
pub use clock::{Clock, VirtualClock, WallClock};
pub use counters::OpCounters;
pub use histogram::DynamicHistogram;
pub use order_detect::{OrderDetector, Orderedness, UniquenessDetector};
pub use rate::RateEstimator;
pub use schedule::{ArrivalSchedule, DeliveryCosts, DeliveryModel, RaceContext, RaceDecision};
pub use selectivity::SelectivityCatalog;
pub use trace::{
    decision_signature, hedge_signatures, QuerySummary, SpanKind, TraceEvent, TraceRecord,
    TraceSink,
};
