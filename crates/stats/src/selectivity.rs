//! Observed selectivities, source-cardinality extrapolation, and
//! multiplicative-join flags (paper §4.2).

use parking_lot::RwLock;
use std::collections::HashMap;

use tukwila_storage::ExprSig;

use crate::schedule::ArrivalSchedule;

/// Observation for one logical subexpression: output cardinality over the
/// product of its input cardinalities. The paper records "only one
/// subexpression selectivity that is shared across all logically equivalent
/// subexpressions, regardless of algorithms used".
#[derive(Debug, Clone, Copy, Default)]
pub struct SubexprObs {
    /// Output cardinality observed for the subexpression so far.
    pub out_card: u64,
    /// Product of the input relation cardinalities fed so far.
    pub in_product: f64,
}

impl SubexprObs {
    /// Observed selectivity `|out| / Π|in|`, if defined.
    pub fn selectivity(&self) -> Option<f64> {
        if self.in_product > 0.0 {
            Some(self.out_card as f64 / self.in_product)
        } else {
            None
        }
    }
}

/// Per-source progress used to extrapolate cardinalities: the paper's
/// heuristic "assume that query performance will be consistent throughout
/// the lifetime of the query".
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceProgress {
    /// Tuples consumed from the source so far.
    pub tuples_read: u64,
    /// Fraction of the source consumed, when the source can report it
    /// (bytes read / total bytes); `None` for fully opaque sources.
    pub fraction_read: Option<f64>,
    /// Whether the source has been fully drained.
    pub eof: bool,
}

impl SourceProgress {
    /// Best-effort cardinality estimate given what has been read.
    ///
    /// A source that has not reached EOF and advertises no total is assumed
    /// to hold at least 25% more than already read (the paper's "assume
    /// performance will be consistent throughout the lifetime" heuristic
    /// needs the remaining-data estimate to stay non-zero until EOF).
    pub fn extrapolated(&self, default_card: u64) -> u64 {
        if self.eof {
            return self.tuples_read;
        }
        match self.fraction_read {
            Some(f) if f > 1e-6 => ((self.tuples_read as f64) / f).round() as u64,
            _ => default_card.max((self.tuples_read as f64 * 1.25).ceil() as u64),
        }
    }
}

/// The shared, runtime-updated statistics catalog.
///
/// Writers: query operators (via the engine). Readers: the re-optimizer.
#[derive(Default)]
pub struct SelectivityCatalog {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    subexprs: HashMap<ExprSig, SubexprObs>,
    sources: HashMap<u32, SourceProgress>,
    /// Observed arrival schedules, published by self-profiling sources
    /// such as the federation adapter. A bare observed rate is stored as
    /// the degenerate single-uniform-segment schedule.
    schedules: HashMap<u32, ArrivalSchedule>,
    /// Join predicates demonstrated "multiplicative" (output exceeds both
    /// inputs), keyed by a caller-chosen predicate id, with the observed
    /// blow-up factor.
    multiplicative: HashMap<u64, f64>,
}

impl SelectivityCatalog {
    /// An empty catalog.
    pub fn new() -> SelectivityCatalog {
        SelectivityCatalog::default()
    }

    /// Record (cumulative) observation for a subexpression.
    pub fn observe_subexpr(&self, sig: ExprSig, out_card: u64, in_product: f64) {
        let mut g = self.inner.write();
        let e = g.subexprs.entry(sig).or_default();
        e.out_card = out_card;
        e.in_product = in_product;
    }

    /// Latest raw observation for a subexpression, if recorded.
    pub fn subexpr(&self, sig: &ExprSig) -> Option<SubexprObs> {
        self.inner.read().subexprs.get(sig).copied()
    }

    /// Observed selectivity for a signature, shared across plans.
    pub fn selectivity(&self, sig: &ExprSig) -> Option<f64> {
        self.subexpr(sig).and_then(|o| o.selectivity())
    }

    /// Record the latest progress snapshot for a source relation.
    pub fn observe_source(&self, rel: u32, progress: SourceProgress) {
        self.inner.write().sources.insert(rel, progress);
    }

    /// Latest progress snapshot for a source relation, if recorded.
    pub fn source(&self, rel: u32) -> Option<SourceProgress> {
        self.inner.read().sources.get(&rel).copied()
    }

    /// Record a source's observed delivery rate (tuples per virtual
    /// second) as the degenerate uniform [`ArrivalSchedule`]. Non-finite
    /// or non-positive rates are ignored.
    pub fn observe_source_rate(&self, rel: u32, tuples_per_sec: f64) {
        if tuples_per_sec.is_finite() && tuples_per_sec > 0.0 {
            self.inner
                .write()
                .schedules
                .insert(rel, ArrivalSchedule::uniform(tuples_per_sec));
        }
    }

    /// Record a source's observed arrival schedule (the full piecewise
    /// form self-profiling sources publish; burst-aware hedging and
    /// overlap costing read it back through
    /// [`SelectivityCatalog::source_schedule`]).
    pub fn observe_source_schedule(&self, rel: u32, schedule: ArrivalSchedule) {
        self.inner.write().schedules.insert(rel, schedule);
    }

    /// Latest observed steady delivery rate for a source, if published
    /// (the scalar view of the stored schedule).
    pub fn source_rate(&self, rel: u32) -> Option<f64> {
        self.inner
            .read()
            .schedules
            .get(&rel)
            .map(|s| s.steady_rate_tuples_per_sec())
    }

    /// Latest observed arrival schedule for a source, if published.
    pub fn source_schedule(&self, rel: u32) -> Option<ArrivalSchedule> {
        self.inner.read().schedules.get(&rel).cloned()
    }

    /// Snapshot of every published arrival schedule, for building a
    /// `DeliveryModel` over the whole query.
    pub fn source_schedules(&self) -> Vec<(u32, ArrivalSchedule)> {
        self.inner
            .read()
            .schedules
            .iter()
            .map(|(rel, s)| (*rel, s.clone()))
            .collect()
    }

    /// Extrapolated cardinality for a source relation.
    pub fn source_card(&self, rel: u32, default_card: u64) -> u64 {
        match self.source(rel) {
            Some(p) => p.extrapolated(default_card),
            None => default_card,
        }
    }

    /// Flag a join predicate as multiplicative with the observed factor
    /// (`|out| / max(|in|)`); future estimates for any expression containing
    /// the predicate multiply it in (§4.2's "conservative" heuristic).
    pub fn flag_multiplicative(&self, pred_id: u64, factor: f64) {
        let mut g = self.inner.write();
        let e = g.multiplicative.entry(pred_id).or_insert(factor);
        // Keep the largest observed blow-up (conservative).
        if factor > *e {
            *e = factor;
        }
    }

    /// Largest observed blow-up factor for a flagged predicate, if any.
    pub fn multiplicative_factor(&self, pred_id: u64) -> Option<f64> {
        self.inner.read().multiplicative.get(&pred_id).copied()
    }

    /// Number of subexpressions with recorded observations.
    pub fn observed_count(&self) -> usize {
        self.inner.read().subexprs.len()
    }

    /// Clear everything (between queries).
    pub fn reset(&self) {
        let mut g = self.inner.write();
        g.subexprs.clear();
        g.sources.clear();
        g.schedules.clear();
        g.multiplicative.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_ratio() {
        let c = SelectivityCatalog::new();
        let sig = ExprSig::new(vec![1, 2]);
        c.observe_subexpr(sig.clone(), 50, 1000.0);
        assert_eq!(c.selectivity(&sig), Some(0.05));
        assert_eq!(c.observed_count(), 1);
        assert!(c.selectivity(&ExprSig::new(vec![1, 3])).is_none());
    }

    #[test]
    fn observation_updates_overwrite() {
        let c = SelectivityCatalog::new();
        let sig = ExprSig::new(vec![1, 2]);
        c.observe_subexpr(sig.clone(), 10, 100.0);
        c.observe_subexpr(sig.clone(), 80, 200.0);
        assert_eq!(c.selectivity(&sig), Some(0.4));
    }

    #[test]
    fn source_extrapolation() {
        let p = SourceProgress {
            tuples_read: 500,
            fraction_read: Some(0.25),
            eof: false,
        };
        assert_eq!(p.extrapolated(20_000), 2000);
        let done = SourceProgress {
            tuples_read: 777,
            fraction_read: Some(1.0),
            eof: true,
        };
        assert_eq!(done.extrapolated(20_000), 777);
        let opaque = SourceProgress {
            tuples_read: 30_000,
            fraction_read: None,
            eof: false,
        };
        // Not at EOF and no advertised total: assume 25% more is coming.
        assert_eq!(opaque.extrapolated(20_000), 37_500);
    }

    #[test]
    fn catalog_source_roundtrip() {
        let c = SelectivityCatalog::new();
        assert_eq!(c.source_card(5, 20_000), 20_000);
        c.observe_source(
            5,
            SourceProgress {
                tuples_read: 100,
                fraction_read: Some(0.5),
                eof: false,
            },
        );
        assert_eq!(c.source_card(5, 20_000), 200);
    }

    #[test]
    fn source_rates_roundtrip_and_reject_garbage() {
        let c = SelectivityCatalog::new();
        assert_eq!(c.source_rate(3), None);
        c.observe_source_rate(3, 1_500.0);
        assert_eq!(c.source_rate(3), Some(1_500.0));
        c.observe_source_rate(3, 2_000.0);
        assert_eq!(c.source_rate(3), Some(2_000.0), "latest observation wins");
        c.observe_source_rate(3, f64::NAN);
        c.observe_source_rate(3, -5.0);
        c.observe_source_rate(3, 0.0);
        assert_eq!(c.source_rate(3), Some(2_000.0), "garbage ignored");
    }

    #[test]
    fn schedules_roundtrip_and_scalar_view_agrees() {
        let c = SelectivityCatalog::new();
        assert_eq!(c.source_schedule(4), None);
        c.observe_source_schedule(4, ArrivalSchedule::bursty(5_000.0, 800.0));
        assert_eq!(c.source_rate(4), Some(800.0), "steady rate of the tail");
        let s = c.source_schedule(4).unwrap();
        assert_eq!(s.arrival_us(0.0), 0.0);
        assert!(s.arrival_us(1.0) > 5_000.0, "lead-in respected");
        // A bare rate observation overwrites with the uniform schedule.
        c.observe_source_rate(4, 100.0);
        assert_eq!(c.source_schedule(4), Some(ArrivalSchedule::uniform(100.0)));
    }

    #[test]
    fn multiplicative_flags_keep_max() {
        let c = SelectivityCatalog::new();
        assert!(c.multiplicative_factor(9).is_none());
        c.flag_multiplicative(9, 2.0);
        c.flag_multiplicative(9, 5.0);
        c.flag_multiplicative(9, 3.0);
        assert_eq!(c.multiplicative_factor(9), Some(5.0));
    }

    #[test]
    fn reset_clears() {
        let c = SelectivityCatalog::new();
        c.observe_subexpr(ExprSig::new(vec![1]), 1, 1.0);
        c.flag_multiplicative(1, 2.0);
        c.reset();
        assert_eq!(c.observed_count(), 0);
        assert!(c.multiplicative_factor(1).is_none());
    }
}
