//! Pre-aggregation push-down analysis (paper §2.2, §6; following the
//! approach of Chaudhuri & Shim \[4\]).
//!
//! Grouping distributes over union, so a *partial* grouping can be inserted
//! below the final GROUP BY as long as the partial groups carry (a) every
//! attribute a later join or residual predicate needs, and (b) every final
//! grouping attribute available in the subtree. This module computes those
//! insertion parameters; the lowering in `enumerate` applies them.

use tukwila_relation::agg::AggFunc;
use tukwila_storage::ExprSig;

use crate::logical::LogicalQuery;

/// The computed parameters of one pre-aggregation insertion point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreAggPoint {
    /// Base relations covered by the subtree the operator sits above.
    pub subtree: ExprSig,
    /// Base columns `(rel, col)` the partial groups must preserve.
    pub group_cols: Vec<(u32, usize)>,
    /// `(query agg index, func, (rel, col))` partials to compute. `avg` is
    /// pre-decomposed: it contributes a `Sum` and a `Count` entry with the
    /// same agg index.
    pub partial_aggs: Vec<(usize, AggFunc, (u32, usize))>,
}

/// Choose the insertion point: the smallest set of relations covering every
/// aggregate input. Returns `None` when the query has no aggregates, or
/// when the covering set is the whole query (pre-aggregation would sit
/// directly under the final GROUP BY and coalesce nothing it doesn't
/// already).
pub fn preagg_point(q: &LogicalQuery) -> Option<PreAggPoint> {
    let agg = q.agg.as_ref()?;
    if agg.aggs.is_empty() {
        return None;
    }
    let mut rels: Vec<u32> = agg.aggs.iter().map(|(_, r)| r.rel).collect();
    rels.sort_unstable();
    rels.dedup();
    if rels.len() >= q.rels.len() {
        return None;
    }
    let subtree = ExprSig::new(rels);
    let group_cols = group_cols_for(q, &subtree);

    let mut partial_aggs = Vec::new();
    for (i, (func, r)) in agg.aggs.iter().enumerate() {
        match func {
            AggFunc::Avg => {
                partial_aggs.push((i, AggFunc::Sum, (r.rel, r.col)));
                partial_aggs.push((i, AggFunc::Count, (r.rel, r.col)));
            }
            f => partial_aggs.push((i, *f, (r.rel, r.col))),
        }
    }
    Some(PreAggPoint {
        subtree,
        group_cols,
        partial_aggs,
    })
}

/// The base columns a partial grouping over `subtree` must preserve: every
/// column of a subtree relation referenced by a predicate crossing the
/// subtree boundary, plus final group columns living inside the subtree.
/// (The join tree may place the operator above a *larger* subtree than the
/// minimal one; the caller recomputes group columns for the actual node.)
pub fn group_cols_for(q: &LogicalQuery, subtree: &ExprSig) -> Vec<(u32, usize)> {
    let mut group_cols: Vec<(u32, usize)> = Vec::new();
    for p in &q.preds {
        let l_in = subtree.contains(p.left_rel);
        let r_in = subtree.contains(p.right_rel);
        if l_in != r_in {
            if l_in {
                group_cols.push((p.left_rel, p.left_col));
            } else {
                group_cols.push((p.right_rel, p.right_col));
            }
        }
    }
    if let Some(agg) = &q.agg {
        for g in &agg.group {
            if subtree.contains(g.rel) {
                group_cols.push((g.rel, g.col));
            }
        }
    }
    group_cols.sort_unstable();
    group_cols.dedup();
    group_cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{AggRef, JoinPred, QueryAgg, QueryRel};
    use tukwila_relation::{DataType, Field, Schema};

    /// Example 2.1's flights query: F(fid, from, to, when), T(ssn, flight),
    /// C(p, num); group by fid, from; max(num).
    fn flights_query() -> LogicalQuery {
        let f = QueryRel::new(
            1,
            "F",
            Schema::new(vec![
                Field::new("F.fid", DataType::Int),
                Field::new("F.from", DataType::Str),
                Field::new("F.to", DataType::Str),
                Field::new("F.when", DataType::Date),
            ]),
        );
        let t = QueryRel::new(
            2,
            "T",
            Schema::new(vec![
                Field::new("T.ssn", DataType::Int),
                Field::new("T.flight", DataType::Int),
            ]),
        );
        let c = QueryRel::new(
            3,
            "C",
            Schema::new(vec![
                Field::new("C.p", DataType::Int),
                Field::new("C.num", DataType::Int),
            ]),
        );
        LogicalQuery::new(
            vec![f, t, c],
            vec![
                JoinPred {
                    id: 1,
                    left_rel: 1,
                    left_col: 0,
                    right_rel: 2,
                    right_col: 1,
                },
                JoinPred {
                    id: 2,
                    left_rel: 2,
                    left_col: 0,
                    right_rel: 3,
                    right_col: 0,
                },
            ],
        )
        .with_agg(QueryAgg {
            group: vec![AggRef { rel: 1, col: 0 }, AggRef { rel: 1, col: 1 }],
            aggs: vec![(
                tukwila_relation::agg::AggFunc::Max,
                AggRef { rel: 3, col: 1 },
            )],
        })
    }

    #[test]
    fn insertion_point_covers_agg_inputs() {
        let q = flights_query();
        let p = preagg_point(&q).unwrap();
        assert_eq!(p.subtree, ExprSig::single(3), "max(num) lives in C");
        // C crosses the boundary via C.p = T.ssn, so C.p must be grouped.
        assert_eq!(p.group_cols, vec![(3, 0)]);
        assert_eq!(p.partial_aggs.len(), 1);
        assert_eq!(p.partial_aggs[0].1, tukwila_relation::agg::AggFunc::Max);
    }

    #[test]
    fn avg_is_decomposed() {
        let mut q = flights_query();
        q.agg.as_mut().unwrap().aggs = vec![(
            tukwila_relation::agg::AggFunc::Avg,
            AggRef { rel: 3, col: 1 },
        )];
        let p = preagg_point(&q).unwrap();
        assert_eq!(p.partial_aggs.len(), 2);
        assert_eq!(p.partial_aggs[0].1, tukwila_relation::agg::AggFunc::Sum);
        assert_eq!(p.partial_aggs[1].1, tukwila_relation::agg::AggFunc::Count);
        assert_eq!(p.partial_aggs[0].0, p.partial_aggs[1].0);
    }

    #[test]
    fn no_point_without_aggregates() {
        let mut q = flights_query();
        q.agg = None;
        assert!(preagg_point(&q).is_none());
    }

    #[test]
    fn no_point_when_aggs_span_everything() {
        let mut q = flights_query();
        q.agg.as_mut().unwrap().aggs = vec![
            (
                tukwila_relation::agg::AggFunc::Max,
                AggRef { rel: 1, col: 3 },
            ),
            (
                tukwila_relation::agg::AggFunc::Max,
                AggRef { rel: 2, col: 0 },
            ),
            (
                tukwila_relation::agg::AggFunc::Max,
                AggRef { rel: 3, col: 1 },
            ),
        ];
        assert!(preagg_point(&q).is_none());
    }

    #[test]
    fn final_group_cols_inside_subtree_are_kept() {
        let mut q = flights_query();
        // Group by C.p as well.
        q.agg
            .as_mut()
            .unwrap()
            .group
            .push(AggRef { rel: 3, col: 0 });
        let p = preagg_point(&q).unwrap();
        assert_eq!(p.group_cols, vec![(3, 0)]);
    }
}
