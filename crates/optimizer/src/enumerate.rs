//! Top-down memoized bushy-tree enumeration and lowering to physical plans
//! (paper §4.3).

use std::collections::HashMap;
use std::rc::Rc;

use tukwila_relation::agg::{coalesce_func, AggFunc};
use tukwila_relation::expr::ArithOp;
use tukwila_relation::{DataType, Error, Expr, Field, Result, Schema};
use tukwila_stats::DeliveryModel;
use tukwila_storage::ExprSig;

use crate::cost::{CardEstimator, EstimateMode, OptimizerContext, PreAggConfig};
use crate::logical::{JoinPred, LogicalQuery};
use crate::phys::{PartialSlot, PhysAgg, PhysJoinAlgo, PhysKind, PhysNode, PhysPlan, PreAggMode};
use crate::preagg::{group_cols_for, preagg_point, PreAggPoint};

/// Join-order skeleton produced by enumeration.
#[derive(Debug)]
enum JoinTree {
    Leaf(usize),
    Join(Rc<JoinTree>, Rc<JoinTree>),
}

/// Two-part cost of a candidate subtree: CPU work (cost-model units) and
/// the residual delivery wait (timeline µs) the shared `DeliveryModel`
/// predicts after overlapping sibling CPU against slow arrivals. Trees
/// compare on the combined `total`, which is what lets join enumeration
/// hide slow deliveries under CPU-heavy subtrees instead of merely
/// re-ranking scans.
#[derive(Debug, Clone, Copy)]
struct Score {
    cpu: f64,
    wait_us: f64,
}

impl Score {
    fn total(&self, cm: &crate::cost::CostModel) -> f64 {
        self.cpu + cm.delivery_per_us * self.wait_us
    }
}

/// Residual delivery wait of a join over its children: while one side's
/// tuples trickle in, the engine burns the sibling subtree's CPU, so each
/// side's wait is credited with the other side's CPU time (converted to
/// timeline µs via `CostModel::unit_us`) — the shared
/// [`tukwila_stats::schedule::residual_wait_us`] formula. The slower
/// residual dominates.
fn overlap_wait(left: &Score, right: &Score, cm: &crate::cost::CostModel) -> f64 {
    let l = tukwila_stats::schedule::residual_wait_us(left.wait_us, right.cpu * cm.unit_us);
    let r = tukwila_stats::schedule::residual_wait_us(right.wait_us, left.cpu * cm.unit_us);
    l.max(r)
}

/// The query optimizer / re-optimizer.
pub struct Optimizer {
    pub ctx: OptimizerContext,
}

impl Optimizer {
    pub fn new(ctx: OptimizerContext) -> Optimizer {
        Optimizer { ctx }
    }

    /// Optimize from scratch (costs over total estimated cardinalities).
    pub fn optimize(&self, q: &LogicalQuery) -> Result<PhysPlan> {
        self.optimize_inner(q, false)
    }

    /// Re-optimize mid-execution: costs over the *remaining* (unconsumed)
    /// source data, using every runtime observation in the context.
    pub fn reoptimize_remaining(&self, q: &LogicalQuery) -> Result<PhysPlan> {
        self.optimize_inner(q, true)
    }

    fn optimize_inner(&self, q: &LogicalQuery, remaining: bool) -> Result<PhysPlan> {
        q.validate()?;
        let n = q.rels.len();
        if n > 20 {
            return Err(Error::Plan(format!("too many relations ({n})")));
        }
        let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
        let mut enumerator = Enumerator {
            q,
            est: CardEstimator::with_mode(q, &self.ctx, EstimateMode::Total),
            sunk: CardEstimator::with_mode(q, &self.ctx, EstimateMode::Consumed),
            credit_sunk: remaining,
            ctx: &self.ctx,
            model: self.ctx.delivery_model(),
            memo: HashMap::new(),
        };
        let (best_score, tree) = enumerator
            .best(full)
            .ok_or_else(|| Error::Plan("no connected join order found".into()))?;
        let mut plan = self.lower_tree(q, &tree, remaining)?;
        if remaining {
            // The comparable cost is the credited enumeration cost (plus
            // the final aggregation, priced on totals for symmetry with
            // `recost`).
            plan.est_cost = best_score.total(&self.ctx.cost_model)
                + match plan.agg {
                    Some(_) => self.ctx.cost_model.agg_tuple * plan.root.est_card,
                    None => 0.0,
                };
        }
        Ok(plan)
    }

    /// Build a *forced* left-deep plan joining relations in exactly the
    /// given order (used by baselines and tests to reproduce specific
    /// plans, e.g. a known-bad ordering).
    pub fn plan_with_order(&self, q: &LogicalQuery, order: &[u32]) -> Result<PhysPlan> {
        q.validate()?;
        if order.len() != q.rels.len() {
            return Err(Error::Plan("order must cover every relation".into()));
        }
        let mut tree = Rc::new(JoinTree::Leaf(q.rel_index(order[0])?));
        for rel in &order[1..] {
            let leaf = Rc::new(JoinTree::Leaf(q.rel_index(*rel)?));
            tree = Rc::new(JoinTree::Join(tree, leaf));
        }
        self.lower_tree(q, &tree, false)
    }

    /// Re-cost an existing plan tree under the current context (over
    /// remaining data when `remaining`). This is how corrective query
    /// processing prices the *currently executing* plan for comparison
    /// against re-optimized candidates. The result combines CPU with the
    /// priced residual delivery wait, mirroring enumeration, so current
    /// plan and candidates compare on the same scale.
    pub fn recost(&self, q: &LogicalQuery, plan: &PhysPlan, remaining: bool) -> Result<f64> {
        let (score, card) = self.recost_score(q, plan, remaining)?;
        Ok(score.total(&self.ctx.cost_model)
            + match plan.agg {
                Some(_) => self.ctx.cost_model.agg_tuple * card,
                None => 0.0,
            })
    }

    /// [`Optimizer::recost`] restricted to the CPU component: cost units
    /// of processing work, without the priced delivery-wait term. The
    /// corrective executor calibrates `CostModel::unit_us` by dividing
    /// the driver CPU µs it *measured* by the CPU units the running plan
    /// consumed — delivery waits are idle time at the driver, so letting
    /// them into the denominator would deflate the calibration on
    /// delivery-bound workloads.
    pub fn recost_cpu(&self, q: &LogicalQuery, plan: &PhysPlan, remaining: bool) -> Result<f64> {
        let (score, card) = self.recost_score(q, plan, remaining)?;
        Ok(score.cpu
            + match plan.agg {
                Some(_) => self.ctx.cost_model.agg_tuple * card,
                None => 0.0,
            })
    }

    fn recost_score(
        &self,
        q: &LogicalQuery,
        plan: &PhysPlan,
        remaining: bool,
    ) -> Result<(Score, f64)> {
        q.validate()?;
        let mut est = CardEstimator::with_mode(q, &self.ctx, EstimateMode::Total);
        let mut sunk = CardEstimator::with_mode(q, &self.ctx, EstimateMode::Consumed);
        let model = self.ctx.delivery_model();
        self.recost_node(q, &plan.root, remaining, &mut est, &mut sunk, &model)
    }

    fn recost_node(
        &self,
        q: &LogicalQuery,
        node: &PhysNode,
        credit_sunk: bool,
        est: &mut CardEstimator<'_>,
        sunk: &mut CardEstimator<'_>,
        model: &DeliveryModel,
    ) -> Result<(Score, f64)> {
        let mask = {
            let mut m = 0u32;
            for r in node.sig.rels() {
                m |= 1 << q.rel_index(*r)?;
            }
            m
        };
        let cm = self.ctx.cost_model;
        match &node.kind {
            PhysKind::Scan { rel, .. } => {
                let mut cost = cm.scan_tuple * self.ctx.base_card(*rel);
                if credit_sunk {
                    cost -= cm.scan_tuple * sunk.raw_card(*rel);
                }
                // Delivery wait over the data this costing covers: the
                // whole relation, or only what is still to arrive.
                let raw = if credit_sunk {
                    (self.ctx.base_card(*rel) - sunk.raw_card(*rel)).max(0.0)
                } else {
                    self.ctx.base_card(*rel)
                };
                Ok((
                    Score {
                        cpu: cost.max(0.0),
                        wait_us: model.arrival_us(*rel, raw),
                    },
                    est.card(mask),
                ))
            }
            PhysKind::Join {
                algo, left, right, ..
            } => {
                let (ls, lcard) = self.recost_node(q, left, credit_sunk, est, sunk, model)?;
                let (rs, rcard) = self.recost_node(q, right, credit_sunk, est, sunk, model)?;
                let card = est.card(mask);
                let step = match algo {
                    PhysJoinAlgo::Merge => cm.merge_step,
                    _ => cm.hash_insert + cm.hash_probe,
                };
                let mut cost = step * (lcard + rcard) + cm.output * card;
                if credit_sunk && self.ctx.is_sunk(&node.sig) {
                    let lmask = {
                        let mut m = 0u32;
                        for r in left.sig.rels() {
                            m |= 1 << q.rel_index(*r)?;
                        }
                        m
                    };
                    let rmask = {
                        let mut m = 0u32;
                        for r in right.sig.rels() {
                            m |= 1 << q.rel_index(*r)?;
                        }
                        m
                    };
                    cost -=
                        step * (sunk.card(lmask) + sunk.card(rmask)) + cm.output * sunk.card(mask);
                }
                Ok((
                    Score {
                        cpu: ls.cpu + rs.cpu + cost.max(0.0),
                        wait_us: overlap_wait(&ls, &rs, &cm),
                    },
                    card,
                ))
            }
            PhysKind::PreAgg { child, .. } => {
                let (cs, ccard) = self.recost_node(q, child, credit_sunk, est, sunk, model)?;
                Ok((
                    Score {
                        cpu: cs.cpu + cm.preagg_tuple * ccard,
                        wait_us: cs.wait_us,
                    },
                    ccard,
                ))
            }
        }
    }

    fn lower_tree(&self, q: &LogicalQuery, tree: &JoinTree, remaining: bool) -> Result<PhysPlan> {
        let point = match self.ctx.preagg {
            PreAggConfig::Off => None,
            PreAggConfig::Insert(_) => preagg_point(q),
        };
        let mode = match self.ctx.preagg {
            PreAggConfig::Insert(m) => m,
            PreAggConfig::Off => PreAggMode::Pseudogroup, // unused
        };
        let _ = remaining; // annotations always carry total estimates
        let mut lowerer = Lowerer {
            q,
            ctx: &self.ctx,
            est: CardEstimator::with_mode(q, &self.ctx, EstimateMode::Total),
            model: self.ctx.delivery_model(),
            point,
            mode,
            inserted: false,
        };
        let root = lowerer.lower(tree)?;
        let agg = build_final_agg(q, &root)?;
        let est_cost = root.est_cost
            + match &agg {
                Some(_) => self.ctx.cost_model.agg_tuple * root.est_card,
                None => 0.0,
            };
        Ok(PhysPlan {
            root,
            agg,
            est_cost,
        })
    }
}

struct Enumerator<'a> {
    q: &'a LogicalQuery,
    /// Total-data estimator: every plan is priced on the whole query.
    est: CardEstimator<'a>,
    /// Consumed-data estimator: sunk-cost credits for work already done
    /// (§4.3 "factors in the amount of computation that has already been
    /// performed").
    sunk: CardEstimator<'a>,
    /// Whether to apply sunk credits (mid-query re-optimization) or price
    /// from scratch (initial optimization).
    credit_sunk: bool,
    ctx: &'a OptimizerContext,
    /// The shared delivery model over the catalog's published schedules;
    /// empty (all arrivals immediate) for unprofiled sources.
    model: DeliveryModel,
    memo: HashMap<u32, Option<(Score, Rc<JoinTree>)>>,
}

impl<'a> Enumerator<'a> {
    /// Cheapest join tree for the relation subset `set` (by combined
    /// CPU + priced residual delivery wait); `None` when the subset is
    /// internally disconnected. Memoizing the best (CPU, wait) pair per
    /// subset is the standard greedy approximation — a dominated-in-CPU
    /// but wait-free subtree can in principle win in a larger context,
    /// but pricing both dimensions into one comparable total keeps the
    /// enumeration O(3^n) and is exact whenever no schedules exist.
    fn best(&mut self, set: u32) -> Option<(Score, Rc<JoinTree>)> {
        if let Some(hit) = self.memo.get(&set) {
            return hit.clone();
        }
        let result = self.compute_best(set);
        self.memo.insert(set, result.clone());
        result
    }

    fn sig_of(&self, set: u32) -> tukwila_storage::ExprSig {
        let rels: Vec<u32> = (0..self.q.rels.len())
            .filter(|i| set & (1 << i) != 0)
            .map(|i| self.q.rels[i].rel_id)
            .collect();
        tukwila_storage::ExprSig::new(rels)
    }

    fn compute_best(&mut self, set: u32) -> Option<(Score, Rc<JoinTree>)> {
        let cm = self.ctx.cost_model;
        if set.count_ones() == 1 {
            let idx = set.trailing_zeros() as usize;
            let card = self.est.card(set);
            let mut cost = cm.scan_tuple * card;
            if self.credit_sunk {
                // Already-read source data is sunk for every plan.
                cost -= cm.scan_tuple * self.sunk.card(set);
            }
            // Delivery wait over the raw tuples this costing still has to
            // receive (remaining data when re-optimizing mid-query).
            let rel_id = self.q.rels[idx].rel_id;
            let raw = if self.credit_sunk {
                (self.est.raw_card(rel_id) - self.sunk.raw_card(rel_id)).max(0.0)
            } else {
                self.est.raw_card(rel_id)
            };
            return Some((
                Score {
                    cpu: cost.max(0.0),
                    wait_us: self.model.arrival_us(rel_id, raw),
                },
                Rc::new(JoinTree::Leaf(idx)),
            ));
        }
        let lowbit = set & set.wrapping_neg();
        let mut best: Option<(Score, Rc<JoinTree>)> = None;
        // Iterate proper submasks containing the lowest bit (canonical).
        let mut sub = (set - 1) & set;
        while sub > 0 {
            if sub & lowbit != 0 && sub != set {
                let rest = set & !sub;
                if self.connected(sub, rest) {
                    if let (Some((sl, tl)), Some((sr, tr))) = (self.best(sub), self.best(rest)) {
                        let score = Score {
                            cpu: sl.cpu + sr.cpu + self.join_cost(set, sub, rest),
                            // Overlap credit: the slow side's arrival wait
                            // is hidden by the sibling subtree's CPU.
                            wait_us: overlap_wait(&sl, &sr, &cm),
                        };
                        if best
                            .as_ref()
                            .map(|(b, _)| score.total(&cm) < b.total(&cm))
                            .unwrap_or(true)
                        {
                            best = Some((score, Rc::new(JoinTree::Join(tl, tr))));
                        }
                    }
                }
            }
            sub = (sub - 1) & set;
        }
        best
    }

    fn connected(&self, a: u32, b: u32) -> bool {
        self.q.preds.iter().any(|p| {
            let li = self.q.rel_index(p.left_rel).expect("validated");
            let ri = self.q.rel_index(p.right_rel).expect("validated");
            (a & (1 << li) != 0 && b & (1 << ri) != 0) || (b & (1 << li) != 0 && a & (1 << ri) != 0)
        })
    }

    fn join_cost(&mut self, set: u32, l: u32, r: u32) -> f64 {
        let cm = self.ctx.cost_model;
        let cl = self.est.card(l);
        let cr = self.est.card(r);
        let cj = self.est.card(set);
        // Pipelined hash: insert + probe per input tuple, plus output.
        let mut cost = (cm.hash_insert + cm.hash_probe) * (cl + cr) + cm.output * cj;
        if self.credit_sunk && self.ctx.is_sunk(&self.sig_of(set)) {
            // This subexpression's result exists from an earlier phase:
            // credit the work already performed on consumed data.
            let scl = self.sunk.card(l);
            let scr = self.sunk.card(r);
            let scj = self.sunk.card(set);
            cost -= (cm.hash_insert + cm.hash_probe) * (scl + scr) + cm.output * scj;
        }
        cost.max(0.0)
    }
}

struct Lowerer<'a> {
    q: &'a LogicalQuery,
    ctx: &'a OptimizerContext,
    est: CardEstimator<'a>,
    /// Shared delivery model for the wait annotations on lowered nodes.
    model: DeliveryModel,
    point: Option<PreAggPoint>,
    mode: PreAggMode,
    inserted: bool,
}

impl<'a> Lowerer<'a> {
    fn mask_of(&self, sig: &ExprSig) -> u32 {
        let mut m = 0u32;
        for r in sig.rels() {
            m |= 1 << self.q.rel_index(*r).expect("validated");
        }
        m
    }

    fn lower(&mut self, tree: &JoinTree) -> Result<PhysNode> {
        let node = match tree {
            JoinTree::Leaf(idx) => self.scan(*idx)?,
            JoinTree::Join(l, r) => {
                let left = self.lower(l)?;
                let right = self.lower(r)?;
                self.join(left, right)?
            }
        };
        // Insert the pre-aggregation operator above the first (deepest)
        // node covering the aggregate inputs, unless that node is the root.
        if !self.inserted {
            if let Some(point) = self.point.clone() {
                if point.subtree.is_subset_of(&node.sig) && node.sig.arity() < self.q.rels.len() {
                    self.inserted = true;
                    return self.wrap_preagg(node, &point);
                }
            }
        }
        Ok(node)
    }

    fn scan(&mut self, idx: usize) -> Result<PhysNode> {
        let rel = &self.q.rels[idx];
        let card = self.est.card(1 << idx);
        let raw = self.est.raw_card(rel.rel_id);
        // Observed arrival schedules (federation profiles) turn a scan's
        // cost from pure CPU into CPU + expected arrival wait; a single
        // uniform segment reproduces the legacy `raw / rate` bound.
        let est_cpu = self.ctx.cost_model.scan_tuple * raw;
        let est_wait_us = self.model.arrival_us(rel.rel_id, raw);
        Ok(PhysNode {
            kind: PhysKind::Scan {
                rel: rel.rel_id,
                name: rel.name.clone(),
                filter: rel.filter.clone(),
            },
            schema: rel.schema.clone(),
            col_map: (0..rel.schema.arity())
                .map(|c| ((rel.rel_id, c), c))
                .collect(),
            partials: vec![],
            sig: ExprSig::single(rel.rel_id),
            est_card: card,
            est_cost: est_cpu + self.ctx.cost_model.delivery_per_us * est_wait_us,
            est_cpu,
            est_wait_us,
        })
    }

    fn join(&mut self, left: PhysNode, right: PhysNode) -> Result<PhysNode> {
        let crossing: Vec<&JoinPred> = self
            .q
            .preds
            .iter()
            .filter(|p| {
                (left.sig.contains(p.left_rel) && right.sig.contains(p.right_rel))
                    || (left.sig.contains(p.right_rel) && right.sig.contains(p.left_rel))
            })
            .collect();
        let first = crossing.first().ok_or_else(|| {
            Error::Plan(format!(
                "no join predicate between {} and {}",
                left.sig, right.sig
            ))
        })?;
        let resolve = |node: &PhysNode, rel: u32, col: usize| -> Result<usize> {
            node.col_of(rel, col).ok_or_else(|| {
                Error::Plan(format!(
                    "column ({rel},{col}) unavailable in {} (projected away?)",
                    node.sig
                ))
            })
        };
        let (left_col, right_col) = if left.sig.contains(first.left_rel) {
            (
                resolve(&left, first.left_rel, first.left_col)?,
                resolve(&right, first.right_rel, first.right_col)?,
            )
        } else {
            (
                resolve(&left, first.right_rel, first.right_col)?,
                resolve(&right, first.left_rel, first.left_col)?,
            )
        };
        let off = left.schema.arity();
        let mut residual = Vec::new();
        for p in &crossing[1..] {
            let (lpos, rpos) = if left.sig.contains(p.left_rel) {
                (
                    resolve(&left, p.left_rel, p.left_col)?,
                    resolve(&right, p.right_rel, p.right_col)?,
                )
            } else {
                (
                    resolve(&left, p.right_rel, p.right_col)?,
                    resolve(&right, p.left_rel, p.left_col)?,
                )
            };
            residual.push((lpos, rpos + off));
        }

        // Merge join when both inputs are leaf scans of sources
        // known/speculated sorted on the join columns.
        let algo = match (&left.kind, &right.kind) {
            (PhysKind::Scan { rel: lr, .. }, PhysKind::Scan { rel: rr, .. })
                if self.ctx.orders.get(lr) == Some(&left_col)
                    && self.ctx.orders.get(rr) == Some(&right_col) =>
            {
                PhysJoinAlgo::Merge
            }
            _ => PhysJoinAlgo::PipelinedHash,
        };

        let schema = left.schema.concat(&right.schema);
        let mut col_map = left.col_map.clone();
        col_map.extend(
            right
                .col_map
                .iter()
                .map(|&((rel, c), pos)| ((rel, c), pos + off)),
        );
        let mut partials = left.partials.clone();
        partials.extend(right.partials.iter().map(|p| PartialSlot {
            agg_idx: p.agg_idx,
            value_col: p.value_col + off,
            count_col: p.count_col.map(|c| c + off),
        }));
        let sig = left.sig.union(&right.sig);
        let mask = self.mask_of(&sig);
        let est_card = self.est.card(mask);
        let cm = self.ctx.cost_model;
        let step = match algo {
            PhysJoinAlgo::Merge => cm.merge_step,
            _ => cm.hash_insert + cm.hash_probe,
        };
        let est_cpu = left.est_cpu
            + right.est_cpu
            + step * (left.est_card + right.est_card)
            + cm.output * est_card;
        // Each side's delivery wait is hidden by the CPU the engine burns
        // on the sibling subtree; the slower residual survives.
        let est_wait_us = overlap_wait(
            &Score {
                cpu: left.est_cpu,
                wait_us: left.est_wait_us,
            },
            &Score {
                cpu: right.est_cpu,
                wait_us: right.est_wait_us,
            },
            &cm,
        );
        Ok(PhysNode {
            kind: PhysKind::Join {
                algo,
                left: Box::new(left),
                right: Box::new(right),
                left_col,
                right_col,
                pred_id: first.id,
                residual,
            },
            schema,
            col_map,
            partials,
            sig,
            est_card,
            est_cost: est_cpu + cm.delivery_per_us * est_wait_us,
            est_cpu,
            est_wait_us,
        })
    }

    fn wrap_preagg(&mut self, child: PhysNode, point: &PreAggPoint) -> Result<PhysNode> {
        let group_base = group_cols_for(self.q, &child.sig);
        let mut group_cols = Vec::with_capacity(group_base.len());
        for (rel, col) in &group_base {
            group_cols.push(child.col_of(*rel, *col).ok_or_else(|| {
                Error::Plan(format!("pre-agg group column ({rel},{col}) unavailable"))
            })?);
        }
        let mut aggs = Vec::new();
        let mut fields: Vec<Field> = group_cols
            .iter()
            .map(|&pos| child.schema.field(pos).clone())
            .collect();
        let mut partials: Vec<PartialSlot> = Vec::new();
        for (agg_idx, func, (rel, col)) in &point.partial_aggs {
            let in_col = child.col_of(*rel, *col).ok_or_else(|| {
                Error::Plan(format!("pre-agg input column ({rel},{col}) unavailable"))
            })?;
            let pos = fields.len();
            let dtype = match func {
                AggFunc::Count => DataType::Int,
                AggFunc::Sum | AggFunc::Avg => DataType::Float,
                AggFunc::Min | AggFunc::Max => child.schema.field(in_col).dtype,
            };
            fields.push(Field::new(
                format!(
                    "partial{agg_idx}.{func}({})",
                    child.schema.field(in_col).name
                ),
                dtype,
            ));
            aggs.push((*func, in_col));
            // Record/extend the slot for this query aggregate.
            if let Some(slot) = partials.iter_mut().find(|s| s.agg_idx == *agg_idx) {
                // Second entry for a decomposed avg: the count column.
                slot.count_col = Some(pos);
            } else {
                partials.push(PartialSlot {
                    agg_idx: *agg_idx,
                    value_col: pos,
                    count_col: if *func == AggFunc::Count
                        && self.query_agg_func(*agg_idx) == AggFunc::Avg
                    {
                        // Shouldn't happen (sum listed first), but be safe.
                        Some(pos)
                    } else {
                        None
                    },
                });
            }
        }
        let schema = Schema::new(fields);
        let col_map: Vec<((u32, usize), usize)> = group_base
            .iter()
            .enumerate()
            .map(|(i, &(rel, col))| ((rel, col), i))
            .collect();
        let est_card = child.est_card; // conservative: assume no reduction
        let est_cpu = child.est_cpu + self.ctx.cost_model.preagg_tuple * child.est_card;
        let est_wait_us = child.est_wait_us;
        let sig = child.sig.clone();
        Ok(PhysNode {
            kind: PhysKind::PreAgg {
                child: Box::new(child),
                mode: self.mode,
                group_cols,
                aggs,
            },
            schema,
            col_map,
            partials,
            sig,
            est_card,
            est_cost: est_cpu + self.ctx.cost_model.delivery_per_us * est_wait_us,
            est_cpu,
            est_wait_us,
        })
    }

    fn query_agg_func(&self, agg_idx: usize) -> AggFunc {
        self.q
            .agg
            .as_ref()
            .map(|a| a.aggs[agg_idx].0)
            .unwrap_or(AggFunc::Count)
    }
}

/// Build the final aggregation spec over the root output, consuming carried
/// partials where present.
fn build_final_agg(q: &LogicalQuery, root: &PhysNode) -> Result<Option<PhysAgg>> {
    let qagg = match &q.agg {
        Some(a) => a,
        None => return Ok(None),
    };
    let mut group_cols = Vec::with_capacity(qagg.group.len());
    for g in &qagg.group {
        group_cols.push(root.col_of(g.rel, g.col).ok_or_else(|| {
            Error::Plan(format!(
                "final group column ({},{}) unavailable at the root",
                g.rel, g.col
            ))
        })?);
    }
    let mut aggs: Vec<(AggFunc, usize)> = Vec::new();
    // For post-projection: per query agg, where its value lands in the
    // aggregation output (offset by group count), and whether it is an
    // avg pair needing division.
    enum Landing {
        Single(usize),
        AvgPair(usize, usize),
    }
    let mut landings: Vec<Landing> = Vec::new();
    let mut needs_post = false;
    for (i, (func, r)) in qagg.aggs.iter().enumerate() {
        if let Some(slot) = root.partial_for(i) {
            match func {
                AggFunc::Avg => {
                    let sum_pos = aggs.len();
                    aggs.push((AggFunc::Sum, slot.value_col));
                    let count_col = slot.count_col.ok_or_else(|| {
                        Error::Plan("avg partial missing its count column".into())
                    })?;
                    let count_pos = aggs.len();
                    aggs.push((AggFunc::Sum, count_col));
                    landings.push(Landing::AvgPair(sum_pos, count_pos));
                    needs_post = true;
                }
                f => {
                    let pos = aggs.len();
                    aggs.push((coalesce_func(*f), slot.value_col));
                    landings.push(Landing::Single(pos));
                    let _ = f;
                }
            }
        } else {
            let col = root.col_of(r.rel, r.col).ok_or_else(|| {
                Error::Plan(format!(
                    "aggregate input ({},{}) unavailable at the root",
                    r.rel, r.col
                ))
            })?;
            let pos = aggs.len();
            aggs.push((*func, col));
            landings.push(Landing::Single(pos));
        }
    }
    let post_project = if needs_post {
        let g = group_cols.len();
        let mut exprs: Vec<Expr> = (0..g).map(Expr::Col).collect();
        let mut fields: Vec<Field> = group_cols
            .iter()
            .map(|&c| root.schema.field(c).clone())
            .collect();
        for (i, landing) in landings.iter().enumerate() {
            let (func, r) = &qagg.aggs[i];
            let base_name = q
                .rel(r.rel)
                .map(|rel| rel.schema.field(r.col).name.clone())
                .unwrap_or_else(|_| format!("col{}", r.col));
            let dtype = match func {
                AggFunc::Count => DataType::Int,
                AggFunc::Sum | AggFunc::Avg => DataType::Float,
                AggFunc::Min | AggFunc::Max => DataType::Float,
            };
            fields.push(Field::new(format!("{func}({base_name})"), dtype));
            match landing {
                Landing::Single(pos) => exprs.push(Expr::Col(g + pos)),
                Landing::AvgPair(sum, count) => exprs.push(Expr::Arith(
                    Box::new(Expr::Col(g + sum)),
                    ArithOp::Div,
                    Box::new(Expr::Col(g + count)),
                )),
            }
        }
        Some((exprs, Schema::new(fields)))
    } else {
        None
    };
    Ok(Some(PhysAgg {
        group_cols,
        aggs,
        post_project,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{AggRef, QueryAgg, QueryRel};
    use std::collections::HashMap as StdHashMap;

    fn rel(id: u32, name: &str, cols: &[&str]) -> QueryRel {
        QueryRel::new(
            id,
            name,
            Schema::new(
                cols.iter()
                    .map(|c| Field::new(format!("{name}.{c}"), DataType::Int))
                    .collect(),
            ),
        )
    }

    fn pred(id: u64, l: u32, lc: usize, r: u32, rc: usize) -> JoinPred {
        JoinPred {
            id,
            left_rel: l,
            left_col: lc,
            right_rel: r,
            right_col: rc,
        }
    }

    /// chain: a(k,v) -- b(ka, kc, v) -- c(k, v)
    fn chain() -> LogicalQuery {
        LogicalQuery::new(
            vec![
                rel(1, "a", &["k", "v"]),
                rel(2, "b", &["ka", "kc", "v"]),
                rel(3, "c", &["k", "v"]),
            ],
            vec![pred(1, 1, 0, 2, 0), pred(2, 2, 1, 3, 0)],
        )
    }

    #[test]
    fn optimizes_chain_into_connected_tree() {
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.optimize(&chain()).unwrap();
        assert_eq!(plan.root.join_count(), 2);
        assert_eq!(plan.root.rels().len(), 3);
        assert_eq!(plan.root.schema.arity(), 7);
        assert!(plan.est_cost > 0.0);
    }

    #[test]
    fn cheap_relations_join_first() {
        // a is tiny, c is huge: best plan joins a⋈b before touching c.
        let mut cards = StdHashMap::new();
        cards.insert(1u32, 10u64);
        cards.insert(2, 1_000);
        cards.insert(3, 1_000_000);
        let opt = Optimizer::new(OptimizerContext::with_cards(cards));
        let plan = opt.optimize(&chain()).unwrap();
        let desc = plan.describe();
        assert!(
            desc.contains("(a ⋈ b)") || desc.contains("(b ⋈ a)"),
            "expected a⋈b first, got {desc}"
        );
    }

    #[test]
    fn forced_order_is_left_deep() {
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.plan_with_order(&chain(), &[3, 2, 1]).unwrap();
        assert_eq!(plan.root.describe(), "((c ⋈ b) ⋈ a)");
    }

    #[test]
    fn join_columns_resolve_through_concat() {
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.plan_with_order(&chain(), &[1, 2, 3]).unwrap();
        if let PhysKind::Join {
            left_col,
            right_col,
            left,
            ..
        } = &plan.root.kind
        {
            // Root joins (a⋈b) with c on b.kc = c.k.
            assert_eq!(left.schema.arity(), 5);
            assert_eq!(*left_col, 3, "b.kc at offset 2 + 1");
            assert_eq!(*right_col, 0);
        } else {
            panic!("root must be a join");
        }
    }

    #[test]
    fn merge_join_selected_for_sorted_leaf_scans() {
        let mut ctx = OptimizerContext::no_statistics();
        ctx.orders.insert(1, 0);
        ctx.orders.insert(2, 0);
        let opt = Optimizer::new(ctx);
        let q = LogicalQuery::new(
            vec![rel(1, "a", &["k"]), rel(2, "b", &["k"])],
            vec![pred(1, 1, 0, 2, 0)],
        );
        let plan = opt.optimize(&q).unwrap();
        match &plan.root.kind {
            PhysKind::Join { algo, .. } => assert_eq!(*algo, PhysJoinAlgo::Merge),
            _ => panic!("expected join root"),
        }
    }

    #[test]
    fn cyclic_graph_produces_residual() {
        // Triangle a-b, b-c, a-c.
        let q = LogicalQuery::new(
            vec![
                rel(1, "a", &["k", "j"]),
                rel(2, "b", &["k", "j"]),
                rel(3, "c", &["k", "j"]),
            ],
            vec![
                pred(1, 1, 0, 2, 0),
                pred(2, 2, 1, 3, 0),
                pred(3, 1, 1, 3, 1),
            ],
        );
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.plan_with_order(&q, &[1, 2, 3]).unwrap();
        if let PhysKind::Join { residual, .. } = &plan.root.kind {
            assert_eq!(residual.len(), 1, "a.j = c.j is residual");
        } else {
            panic!("expected join root");
        }
    }

    fn agg_query() -> LogicalQuery {
        chain().with_agg(QueryAgg {
            group: vec![AggRef { rel: 1, col: 0 }],
            aggs: vec![(AggFunc::Max, AggRef { rel: 3, col: 1 })],
        })
    }

    #[test]
    fn final_agg_resolves_columns() {
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.optimize(&agg_query()).unwrap();
        let agg = plan.agg.expect("agg present");
        assert_eq!(agg.group_cols.len(), 1);
        assert_eq!(agg.aggs.len(), 1);
        assert_eq!(agg.aggs[0].0, AggFunc::Max);
        assert!(agg.post_project.is_none());
    }

    #[test]
    fn preagg_inserted_above_agg_leaf() {
        let mut ctx = OptimizerContext::no_statistics();
        ctx.preagg = PreAggConfig::Insert(PreAggMode::AdaptiveWindow);
        let opt = Optimizer::new(ctx);
        let plan = opt.optimize(&agg_query()).unwrap();
        let desc = plan.describe();
        assert!(desc.contains("preagg[c]"), "got {desc}");
        // Final agg consumes the carried partial with a coalesced func.
        let agg = plan.agg.unwrap();
        assert_eq!(agg.aggs[0].0, AggFunc::Max);
    }

    #[test]
    fn avg_through_preagg_gets_post_projection() {
        let mut q = agg_query();
        q.agg.as_mut().unwrap().aggs = vec![(AggFunc::Avg, AggRef { rel: 3, col: 1 })];
        let mut ctx = OptimizerContext::no_statistics();
        ctx.preagg = PreAggConfig::Insert(PreAggMode::AdaptiveWindow);
        let opt = Optimizer::new(ctx);
        let plan = opt.optimize(&q).unwrap();
        let agg = plan.agg.unwrap();
        assert_eq!(agg.aggs.len(), 2, "sum + count");
        let (exprs, schema) = agg.post_project.expect("division projection");
        assert_eq!(exprs.len(), 2, "group col + avg");
        assert_eq!(schema.arity(), 2);
    }

    #[test]
    fn reoptimize_uses_remaining_cards() {
        let mut ctx = OptimizerContext::no_statistics();
        ctx.consumed.insert(1, 19_999);
        ctx.consumed.insert(2, 0);
        ctx.consumed.insert(3, 0);
        let opt = Optimizer::new(ctx);
        let full = opt.optimize(&chain()).unwrap();
        let remaining = opt.reoptimize_remaining(&chain()).unwrap();
        assert!(remaining.est_cost < full.est_cost);
    }
}
