//! The logical query model: select-project-join-aggregate over base
//! relations (the paper's optimizer "supports
//! select-project-join-aggregation queries (but not SQL subqueries)").

use tukwila_relation::agg::AggFunc;
use tukwila_relation::{Error, Expr, Result, Schema};

/// A base relation in the query.
#[derive(Debug, Clone)]
pub struct QueryRel {
    pub rel_id: u32,
    pub name: String,
    pub schema: Schema,
    /// Selection predicate over the base schema, applied at the leaf.
    pub filter: Option<Expr>,
    /// Optimizer's default selectivity estimate for `filter` (ignored when
    /// runtime observations exist).
    pub filter_sel: f64,
}

impl QueryRel {
    pub fn new(rel_id: u32, name: impl Into<String>, schema: Schema) -> QueryRel {
        QueryRel {
            rel_id,
            name: name.into(),
            schema,
            filter: None,
            filter_sel: 1.0,
        }
    }

    pub fn with_filter(mut self, filter: Expr, est_sel: f64) -> QueryRel {
        self.filter = Some(filter);
        self.filter_sel = est_sel;
        self
    }
}

/// An equi-join predicate between two base relations' columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPred {
    /// Stable identity, used for multiplicative-join flags (§4.2).
    pub id: u64,
    pub left_rel: u32,
    pub left_col: usize,
    pub right_rel: u32,
    pub right_col: usize,
}

impl JoinPred {
    pub fn touches(&self, rel: u32) -> bool {
        self.left_rel == rel || self.right_rel == rel
    }
}

/// A column of a base relation, as referenced by grouping/aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggRef {
    pub rel: u32,
    pub col: usize,
}

/// Final grouping/aggregation.
#[derive(Debug, Clone)]
pub struct QueryAgg {
    pub group: Vec<AggRef>,
    pub aggs: Vec<(AggFunc, AggRef)>,
}

/// A complete logical query.
#[derive(Debug, Clone)]
pub struct LogicalQuery {
    pub rels: Vec<QueryRel>,
    pub preds: Vec<JoinPred>,
    pub agg: Option<QueryAgg>,
}

impl LogicalQuery {
    pub fn new(rels: Vec<QueryRel>, preds: Vec<JoinPred>) -> LogicalQuery {
        LogicalQuery {
            rels,
            preds,
            agg: None,
        }
    }

    pub fn with_agg(mut self, agg: QueryAgg) -> LogicalQuery {
        self.agg = Some(agg);
        self
    }

    pub fn rel(&self, rel_id: u32) -> Result<&QueryRel> {
        self.rels
            .iter()
            .find(|r| r.rel_id == rel_id)
            .ok_or_else(|| Error::Plan(format!("unknown relation {rel_id}")))
    }

    pub fn rel_index(&self, rel_id: u32) -> Result<usize> {
        self.rels
            .iter()
            .position(|r| r.rel_id == rel_id)
            .ok_or_else(|| Error::Plan(format!("unknown relation {rel_id}")))
    }

    /// Validate: predicates reference known relations/columns, the join
    /// graph is connected, aggregation references are in range.
    pub fn validate(&self) -> Result<()> {
        if self.rels.is_empty() {
            return Err(Error::Plan("query has no relations".into()));
        }
        for p in &self.preds {
            let l = self.rel(p.left_rel)?;
            let r = self.rel(p.right_rel)?;
            if p.left_col >= l.schema.arity() || p.right_col >= r.schema.arity() {
                return Err(Error::Plan(format!(
                    "predicate {} references out-of-range column",
                    p.id
                )));
            }
            if p.left_rel == p.right_rel {
                return Err(Error::Plan("self-join predicates unsupported".into()));
            }
        }
        // Connectivity via union-find.
        let n = self.rels.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for p in &self.preds {
            let a = self.rel_index(p.left_rel)?;
            let b = self.rel_index(p.right_rel)?;
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for i in 1..n {
            if find(&mut parent, i) != root {
                return Err(Error::Plan(format!(
                    "relation {} is disconnected from the join graph",
                    self.rels[i].name
                )));
            }
        }
        if let Some(agg) = &self.agg {
            for r in agg.group.iter().chain(agg.aggs.iter().map(|(_, r)| r)) {
                let rel = self.rel(r.rel)?;
                if r.col >= rel.schema.arity() {
                    return Err(Error::Plan(format!(
                        "aggregation references out-of-range column {} of {}",
                        r.col, rel.name
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field};

    fn rel(id: u32, name: &str) -> QueryRel {
        QueryRel::new(
            id,
            name,
            Schema::new(vec![
                Field::new(format!("{name}.k"), DataType::Int),
                Field::new(format!("{name}.v"), DataType::Int),
            ]),
        )
    }

    fn pred(id: u64, l: u32, r: u32) -> JoinPred {
        JoinPred {
            id,
            left_rel: l,
            left_col: 0,
            right_rel: r,
            right_col: 0,
        }
    }

    #[test]
    fn valid_chain_query() {
        let q = LogicalQuery::new(
            vec![rel(1, "a"), rel(2, "b"), rel(3, "c")],
            vec![pred(1, 1, 2), pred(2, 2, 3)],
        );
        q.validate().unwrap();
        assert_eq!(q.rel_index(3).unwrap(), 2);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let q = LogicalQuery::new(vec![rel(1, "a"), rel(2, "b")], vec![]);
        assert!(q.validate().is_err());
    }

    #[test]
    fn bad_column_rejected() {
        let p = JoinPred {
            id: 1,
            left_rel: 1,
            left_col: 9,
            right_rel: 2,
            right_col: 0,
        };
        let q = LogicalQuery::new(vec![rel(1, "a"), rel(2, "b")], vec![p]);
        assert!(q.validate().is_err());
    }

    #[test]
    fn bad_agg_ref_rejected() {
        use tukwila_relation::agg::AggFunc;
        let q = LogicalQuery::new(vec![rel(1, "a"), rel(2, "b")], vec![pred(1, 1, 2)]).with_agg(
            QueryAgg {
                group: vec![AggRef { rel: 1, col: 0 }],
                aggs: vec![(AggFunc::Max, AggRef { rel: 2, col: 99 })],
            },
        );
        assert!(q.validate().is_err());
    }

    #[test]
    fn self_join_rejected() {
        let q = LogicalQuery::new(vec![rel(1, "a"), rel(2, "b")], vec![pred(1, 1, 1)]);
        assert!(q.validate().is_err());
    }
}
