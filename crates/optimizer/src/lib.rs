//! The Tukwila query optimizer / re-optimizer (paper §4.2–§4.3).
//!
//! "Top-down enumeration (recursion with memoization, equivalent to dynamic
//! programming but more flexible for sharing subexpressions between
//! optimizer re-invocations) \[that\] mostly follows the System-R model",
//! with:
//!
//! * **bushy-tree enumeration** (important for data integration, per the
//!   paper's citations of [11, 8]),
//! * **pre-aggregation push-down** in the style the paper adopts from
//!   Chaudhuri & Shim (\[4\]), emitting adjustable-window or pseudogroup
//!   operators so every plan is schema-compatible (§3.2),
//! * a **cost re-estimator** that folds in runtime observations: observed
//!   subexpression selectivities (shared across all logically equivalent
//!   subexpressions), extrapolated source cardinalities, the
//!   parent-expression key–foreign-key speculation, and multiplicative-join
//!   flags (§4.2),
//! * **sunk-cost-aware re-planning**: when invoked mid-execution the
//!   optimizer costs plans over the *remaining* source data, which is what
//!   corrective query processing compares against the current plan.
//!
//! The optimizer emits a [`phys::PhysPlan`] — a physical operator tree with
//! resolved schemas and column maps — which `tukwila-core` lowers onto the
//! execution engine.

pub mod cost;
pub mod enumerate;
pub mod fragment;
pub mod logical;
pub mod phys;
pub mod preagg;

pub use cost::{CostModel, OptimizerContext, PreAggConfig};
pub use enumerate::Optimizer;
pub use fragment::{choose_cuts, choose_cuts_traced, FragmentationConfig};
pub use logical::{AggRef, JoinPred, LogicalQuery, QueryAgg, QueryRel};
pub use phys::{PhysAgg, PhysJoinAlgo, PhysKind, PhysNode, PhysPlan, PreAggMode};
