//! The fragmentation pass: decide where to cut a physical plan into
//! exchange-connected pipeline fragments (the §5 parallel-subplan
//! configuration).
//!
//! The overlap opportunity is delivery-boundedness: when one input of a
//! join is fed by a slow source (an observed arrival schedule published
//! by the federation layer bounds how fast its tuples can arrive) and the
//! sibling subtree is CPU-heavy, executing the sibling as its own
//! fragment lets its CPU burn on another thread while the driver blocks
//! on the slow deliveries. The pass walks the plan tree top-down and
//! returns the logical signatures of the subtrees to split out; the
//! lowering layer (in `tukwila-core`) turns each into a producer fragment
//! behind an exchange.
//!
//! Cuts are priced with the same shared delivery model the optimizer's
//! costing and the federation hedge gate use — the annotations
//! [`PhysNode::est_cpu`] / [`PhysNode::est_wait_us`] the lowerer derived
//! from it — instead of the old bare threshold rule. A cut pays when
//!
//! ```text
//! win  = min(sibling CPU µs, slow side's residual delivery wait µs)
//!      − exchange_tuple_us · |sibling output|
//! win ≥ min_net_win_us, and a core is free to run the producer
//! ```
//!
//! The core budget ([`FragmentationConfig::cores`], defaulting to
//! [`std::thread::available_parallelism`]) stops the pass from cutting
//! past the host's ability to actually run the producers: a fragment with
//! no idle core to land on buys queue overhead and nothing else.

use crate::cost::OptimizerContext;
use crate::phys::{PhysKind, PhysNode, PhysPlan};
use tukwila_stats::{TraceEvent, TraceSink};
use tukwila_storage::ExprSig;

/// Tunables of the fragmentation pass.
#[derive(Debug, Clone)]
pub struct FragmentationConfig {
    /// Minimum modeled net win (timeline µs) before a cut is taken.
    /// `f64::NEG_INFINITY` (the [`FragmentationConfig::aggressive`] test
    /// config) cuts every eligible subtree regardless of profitability.
    pub min_net_win_us: f64,
    /// Modeled cost (timeline µs) per tuple crossing an exchange queue:
    /// the producer's send, the bounded-queue handoff, and the consumer's
    /// re-read.
    pub exchange_tuple_us: f64,
    /// Upper bound on producer fragments (the root fragment is extra).
    pub max_fragments: usize,
    /// Core budget for producer fragments plus the driver. `None` reads
    /// [`std::thread::available_parallelism`] at pass time; tests pin it
    /// for determinism.
    pub cores: Option<usize>,
}

impl Default for FragmentationConfig {
    fn default() -> Self {
        FragmentationConfig {
            min_net_win_us: 2_000.0,
            exchange_tuple_us: 0.05,
            max_fragments: 3,
            cores: None,
        }
    }
}

impl FragmentationConfig {
    /// A configuration that cuts every eligible join subtree regardless
    /// of modeled profitability or core budget — used by tests that need
    /// an exchange to exist deterministically.
    pub fn aggressive() -> FragmentationConfig {
        FragmentationConfig {
            min_net_win_us: f64::NEG_INFINITY,
            exchange_tuple_us: 0.0,
            max_fragments: 8,
            cores: Some(usize::MAX),
        }
    }

    /// Rescale the per-tuple exchange price for a host whose *measured*
    /// cost-unit→µs conversion is `unit_us` (the corrective warmup
    /// calibration). The configured price was chosen under the documented
    /// fallback conversion; exchange shipping is engine work (transpose,
    /// bounded-queue handoff, consumer re-read), so it scales with the
    /// measured per-unit driver time. Scaling in place preserves caller
    /// intent — an aggressive config's free exchanges stay free.
    pub fn recalibrate(&mut self, unit_us: f64) {
        let scale =
            (unit_us / tukwila_stats::schedule::DeliveryCosts::DEFAULT_UNIT_US).clamp(0.05, 20.0);
        self.exchange_tuple_us *= scale;
    }

    fn core_budget(&self) -> usize {
        self.cores
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1)
    }
}

/// Modeled net win (timeline µs) of splitting `candidate` out as a
/// producer fragment while its sibling waits on `slow_wait_us` of
/// residual delivery: the overlap actually bought (never more than either
/// the candidate's CPU or the sibling's wait) minus the exchange cost of
/// shipping the candidate's output through a queue.
pub fn cut_net_win_us(
    candidate: &PhysNode,
    slow_wait_us: f64,
    ctx: &OptimizerContext,
    config: &FragmentationConfig,
) -> f64 {
    let cpu_us = candidate.est_cpu * ctx.cost_model.unit_us;
    tukwila_stats::schedule::hidden_wait_us(slow_wait_us, cpu_us)
        - config.exchange_tuple_us * candidate.est_card
}

/// Choose the subtrees to split out as producer fragments.
///
/// Returns the logical signatures of the cut roots, outermost first. The
/// root node itself is never cut (it anchors the consumer fragment), and
/// a cut subtree's descendants are only considered for further (nested)
/// cuts while the fragment and core budgets last.
pub fn choose_cuts(
    plan: &PhysPlan,
    ctx: &OptimizerContext,
    config: &FragmentationConfig,
) -> Vec<ExprSig> {
    choose_cuts_traced(plan, ctx, config, &TraceSink::disabled())
}

/// [`choose_cuts`] with decision provenance: every candidate subtree the
/// pass actually prices is journaled as a [`TraceEvent::CutDecision`]
/// carrying its modeled net win, the bar it was held to, and whether the
/// cut was taken. Budget-exhausted subtrees are never priced and so emit
/// nothing.
pub fn choose_cuts_traced(
    plan: &PhysPlan,
    ctx: &OptimizerContext,
    config: &FragmentationConfig,
    trace: &TraceSink,
) -> Vec<ExprSig> {
    let mut cuts = Vec::new();
    walk(&plan.root, ctx, config, &mut cuts, trace);
    cuts
}

/// Price one candidate, journal the decision, and return whether it
/// clears the bar.
fn consider(
    candidate: &PhysNode,
    slow_wait_us: f64,
    ctx: &OptimizerContext,
    config: &FragmentationConfig,
    trace: &TraceSink,
) -> bool {
    let net_win_us = cut_net_win_us(candidate, slow_wait_us, ctx, config);
    let accepted = net_win_us >= config.min_net_win_us;
    trace.record(TraceEvent::CutDecision {
        site: candidate.sig.to_string(),
        net_win_us,
        min_net_win_us: config.min_net_win_us,
        accepted,
    });
    accepted
}

fn eligible(node: &PhysNode) -> bool {
    // A bare scan fragment would only forward batches; it needs at least
    // one join to have CPU worth moving to another core.
    node.join_count() >= 1
}

fn walk(
    node: &PhysNode,
    ctx: &OptimizerContext,
    config: &FragmentationConfig,
    cuts: &mut Vec<ExprSig>,
    trace: &TraceSink,
) {
    if cuts.len() >= config.max_fragments {
        return;
    }
    // Each producer fragment needs its own core next to the driver's;
    // once the budget is spent, further cuts cannot run in parallel and
    // would only pay queue overhead.
    if cuts.len() + 1 >= config.core_budget() {
        return;
    }
    match &node.kind {
        PhysKind::Join { left, right, .. } => {
            // Cut the CPU-heavy sibling of a delivery-bound input when
            // the modeled net win clears the bar.
            let cut_left = eligible(left)
                && !cuts.contains(&left.sig)
                && consider(left, right.est_wait_us, ctx, config, trace);
            if cut_left {
                cuts.push(left.sig.clone());
            } else if eligible(right)
                && !cuts.contains(&right.sig)
                && consider(right, left.est_wait_us, ctx, config, trace)
            {
                cuts.push(right.sig.clone());
            }
            walk(left, ctx, config, cuts, trace);
            walk(right, ctx, config, cuts, trace);
        }
        PhysKind::PreAgg { child, .. } => walk(child, ctx, config, cuts, trace),
        PhysKind::Scan { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::Optimizer;
    use crate::logical::{JoinPred, LogicalQuery, QueryRel};
    use std::sync::Arc;
    use tukwila_relation::{DataType, Field, Schema};
    use tukwila_stats::SelectivityCatalog;

    fn rel(id: u32, name: &str) -> QueryRel {
        QueryRel::new(
            id,
            name,
            Schema::new(vec![Field::new(format!("{name}.k"), DataType::Int)]),
        )
    }

    fn chain3() -> LogicalQuery {
        LogicalQuery::new(
            vec![rel(1, "a"), rel(2, "b"), rel(3, "c")],
            vec![
                JoinPred {
                    id: 1,
                    left_rel: 1,
                    left_col: 0,
                    right_rel: 2,
                    right_col: 0,
                },
                JoinPred {
                    id: 2,
                    left_rel: 2,
                    left_col: 0,
                    right_rel: 3,
                    right_col: 0,
                },
            ],
        )
    }

    /// Default-ish config with the core budget pinned so the tests do not
    /// depend on the host's parallelism.
    fn cfg(cores: usize) -> FragmentationConfig {
        FragmentationConfig {
            cores: Some(cores),
            ..Default::default()
        }
    }

    #[test]
    fn no_observed_rates_no_cuts() {
        let q = chain3();
        let ctx = OptimizerContext::no_statistics();
        let plan = Optimizer::new(ctx.clone()).optimize(&q).unwrap();
        assert!(choose_cuts(&plan, &ctx, &cfg(8)).is_empty());
    }

    #[test]
    fn slow_source_cuts_the_cpu_heavy_sibling() {
        let q = chain3();
        let catalog = Arc::new(SelectivityCatalog::new());
        // Relation 3 delivers at 100 tuples/s: 20k default tuples take
        // 200 virtual seconds — massively delivery-bound.
        catalog.observe_source_rate(3, 100.0);
        let ctx = OptimizerContext {
            catalog: Some(catalog),
            ..OptimizerContext::no_statistics()
        };
        let plan = Optimizer::new(ctx.clone())
            .plan_with_order(&q, &[1, 2, 3])
            .unwrap();
        // The a⋈b subtree's CPU at default unit_us (~98k cost units ≈
        // 9.8ms) clears the net-win bar against c's 200-second wait even
        // after the exchange toll on its 20k output tuples.
        let cuts = choose_cuts(&plan, &ctx, &cfg(8));
        assert_eq!(
            cuts,
            vec![ExprSig::new(vec![1, 2])],
            "the a⋈b subtree overlaps c's slow deliveries"
        );
    }

    #[test]
    fn exchange_toll_vetoes_a_marginal_cut() {
        let q = chain3();
        let catalog = Arc::new(SelectivityCatalog::new());
        catalog.observe_source_rate(3, 100.0);
        let ctx = OptimizerContext {
            catalog: Some(catalog),
            ..OptimizerContext::no_statistics()
        };
        let plan = Optimizer::new(ctx.clone())
            .plan_with_order(&q, &[1, 2, 3])
            .unwrap();
        // Price the exchange so high that shipping the subtree's output
        // costs more than the overlap could ever win.
        let cuts = choose_cuts(
            &plan,
            &ctx,
            &FragmentationConfig {
                exchange_tuple_us: 1e9,
                ..cfg(8)
            },
        );
        assert!(cuts.is_empty(), "exchange cost must veto the cut");
    }

    #[test]
    fn single_core_hosts_never_cut() {
        let q = chain3();
        let catalog = Arc::new(SelectivityCatalog::new());
        catalog.observe_source_rate(3, 100.0);
        let ctx = OptimizerContext {
            catalog: Some(catalog),
            ..OptimizerContext::no_statistics()
        };
        let plan = Optimizer::new(ctx.clone())
            .plan_with_order(&q, &[1, 2, 3])
            .unwrap();
        let one_core = FragmentationConfig {
            exchange_tuple_us: 0.0,
            ..cfg(1)
        };
        assert!(
            choose_cuts(&plan, &ctx, &one_core).is_empty(),
            "no idle core for the producer: parallelism cannot pay"
        );
        let two_cores = FragmentationConfig {
            exchange_tuple_us: 0.0,
            ..cfg(2)
        };
        assert_eq!(choose_cuts(&plan, &ctx, &two_cores).len(), 1);
    }

    #[test]
    fn aggressive_config_always_finds_a_cut_on_joins() {
        let q = chain3();
        let ctx = OptimizerContext::no_statistics();
        let plan = Optimizer::new(ctx.clone())
            .plan_with_order(&q, &[1, 2, 3])
            .unwrap();
        let cuts = choose_cuts(&plan, &ctx, &FragmentationConfig::aggressive());
        assert!(!cuts.is_empty());
    }

    #[test]
    fn fragment_budget_is_respected() {
        let q = chain3();
        let ctx = OptimizerContext::no_statistics();
        let plan = Optimizer::new(ctx.clone())
            .plan_with_order(&q, &[1, 2, 3])
            .unwrap();
        let cfg = FragmentationConfig {
            max_fragments: 1,
            ..FragmentationConfig::aggressive()
        };
        assert!(choose_cuts(&plan, &ctx, &cfg).len() <= 1);
    }
}
