//! The fragmentation pass: decide where to cut a physical plan into
//! exchange-connected pipeline fragments (the §5 parallel-subplan
//! configuration).
//!
//! The overlap opportunity is delivery-boundedness: when one input of a
//! join is fed by a slow source (an observed delivery rate published by
//! the federation layer bounds how fast its tuples can arrive) and the
//! sibling subtree is CPU-heavy, executing the sibling as its own
//! fragment lets its CPU burn on another thread while the driver blocks
//! on the slow deliveries. The pass walks the plan tree top-down and
//! returns the logical signatures of the subtrees to split out; the
//! lowering layer (in `tukwila-core`) turns each into a producer fragment
//! behind an exchange.
//!
//! Cuts are chosen only where they can pay:
//!
//! * the sibling of the cut subtree must be *delivery-bound* — its
//!   expected arrival time (from observed rates over remaining
//!   cardinalities) exceeds [`FragmentationConfig::min_delivery_us`];
//! * the cut subtree must carry real CPU work — estimated cost at least
//!   [`FragmentationConfig::min_cpu_cost`] and at least one join (a bare
//!   scan fragment would only forward batches);
//! * at most [`FragmentationConfig::max_fragments`] producer fragments,
//!   nearest to the root first (those overlap the most work).

use crate::cost::OptimizerContext;
use crate::phys::{PhysKind, PhysNode, PhysPlan};
use tukwila_storage::ExprSig;

/// Tunables of the fragmentation pass.
#[derive(Debug, Clone)]
pub struct FragmentationConfig {
    /// Minimum expected delivery wait (timeline µs) on the slow side of a
    /// join before overlapping its sibling is worth a fragment boundary.
    pub min_delivery_us: f64,
    /// Minimum estimated CPU cost (cost-model units) of a subtree before
    /// it earns its own fragment.
    pub min_cpu_cost: f64,
    /// Upper bound on producer fragments (the root fragment is extra).
    pub max_fragments: usize,
}

impl Default for FragmentationConfig {
    fn default() -> Self {
        FragmentationConfig {
            min_delivery_us: 50_000.0,
            min_cpu_cost: 5_000.0,
            max_fragments: 3,
        }
    }
}

impl FragmentationConfig {
    /// A configuration that cuts every eligible join subtree regardless of
    /// observed rates or cost — used by tests that need an exchange to
    /// exist deterministically.
    pub fn aggressive() -> FragmentationConfig {
        FragmentationConfig {
            min_delivery_us: 0.0,
            min_cpu_cost: 0.0,
            max_fragments: 8,
        }
    }
}

/// Expected delivery wait (timeline µs) of the slowest source feeding the
/// subtree: `remaining_card / observed_rate` per scan, maximum over scans.
/// Zero when no scan in the subtree has a published rate (local/fast
/// sources — the seed assumption).
pub fn subtree_delivery_us(node: &PhysNode, ctx: &OptimizerContext) -> f64 {
    match &node.kind {
        PhysKind::Scan { rel, .. } => ctx.delivery_bound_us(*rel, ctx.remaining_card(*rel)),
        PhysKind::Join { left, right, .. } => {
            subtree_delivery_us(left, ctx).max(subtree_delivery_us(right, ctx))
        }
        PhysKind::PreAgg { child, .. } => subtree_delivery_us(child, ctx),
    }
}

/// Choose the subtrees to split out as producer fragments.
///
/// Returns the logical signatures of the cut roots, outermost first. The
/// root node itself is never cut (it anchors the consumer fragment), and
/// a cut subtree's descendants are only considered for further (nested)
/// cuts while the fragment budget lasts.
pub fn choose_cuts(
    plan: &PhysPlan,
    ctx: &OptimizerContext,
    config: &FragmentationConfig,
) -> Vec<ExprSig> {
    let mut cuts = Vec::new();
    walk(&plan.root, ctx, config, &mut cuts);
    cuts
}

fn eligible(node: &PhysNode, config: &FragmentationConfig) -> bool {
    node.join_count() >= 1 && node.est_cost >= config.min_cpu_cost
}

fn walk(
    node: &PhysNode,
    ctx: &OptimizerContext,
    config: &FragmentationConfig,
    cuts: &mut Vec<ExprSig>,
) {
    if cuts.len() >= config.max_fragments {
        return;
    }
    match &node.kind {
        PhysKind::Join { left, right, .. } => {
            let dl = subtree_delivery_us(left, ctx);
            let dr = subtree_delivery_us(right, ctx);
            // Cut the CPU-heavy sibling of a delivery-bound input. With
            // `min_delivery_us == 0` (the aggressive/test config) any
            // eligible sibling is cut.
            if dr >= config.min_delivery_us && eligible(left, config) && !cuts.contains(&left.sig) {
                cuts.push(left.sig.clone());
            } else if dl >= config.min_delivery_us
                && eligible(right, config)
                && !cuts.contains(&right.sig)
            {
                cuts.push(right.sig.clone());
            }
            walk(left, ctx, config, cuts);
            walk(right, ctx, config, cuts);
        }
        PhysKind::PreAgg { child, .. } => walk(child, ctx, config, cuts),
        PhysKind::Scan { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::Optimizer;
    use crate::logical::{JoinPred, LogicalQuery, QueryRel};
    use std::sync::Arc;
    use tukwila_relation::{DataType, Field, Schema};
    use tukwila_stats::SelectivityCatalog;

    fn rel(id: u32, name: &str) -> QueryRel {
        QueryRel::new(
            id,
            name,
            Schema::new(vec![Field::new(format!("{name}.k"), DataType::Int)]),
        )
    }

    fn chain3() -> LogicalQuery {
        LogicalQuery::new(
            vec![rel(1, "a"), rel(2, "b"), rel(3, "c")],
            vec![
                JoinPred {
                    id: 1,
                    left_rel: 1,
                    left_col: 0,
                    right_rel: 2,
                    right_col: 0,
                },
                JoinPred {
                    id: 2,
                    left_rel: 2,
                    left_col: 0,
                    right_rel: 3,
                    right_col: 0,
                },
            ],
        )
    }

    #[test]
    fn no_observed_rates_no_cuts() {
        let q = chain3();
        let ctx = OptimizerContext::no_statistics();
        let plan = Optimizer::new(ctx.clone()).optimize(&q).unwrap();
        assert!(choose_cuts(&plan, &ctx, &FragmentationConfig::default()).is_empty());
    }

    #[test]
    fn slow_source_cuts_the_cpu_heavy_sibling() {
        let q = chain3();
        let catalog = Arc::new(SelectivityCatalog::new());
        // Relation 3 delivers at 100 tuples/s: 20k default tuples take
        // 200 virtual seconds — massively delivery-bound.
        catalog.observe_source_rate(3, 100.0);
        let ctx = OptimizerContext {
            catalog: Some(catalog),
            ..OptimizerContext::no_statistics()
        };
        let plan = Optimizer::new(ctx.clone())
            .plan_with_order(&q, &[1, 2, 3])
            .unwrap();
        let cuts = choose_cuts(
            &plan,
            &ctx,
            &FragmentationConfig {
                min_cpu_cost: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(
            cuts,
            vec![ExprSig::new(vec![1, 2])],
            "the a⋈b subtree overlaps c's slow deliveries"
        );
    }

    #[test]
    fn aggressive_config_always_finds_a_cut_on_joins() {
        let q = chain3();
        let ctx = OptimizerContext::no_statistics();
        let plan = Optimizer::new(ctx.clone())
            .plan_with_order(&q, &[1, 2, 3])
            .unwrap();
        let cuts = choose_cuts(&plan, &ctx, &FragmentationConfig::aggressive());
        assert!(!cuts.is_empty());
    }

    #[test]
    fn fragment_budget_is_respected() {
        let q = chain3();
        let ctx = OptimizerContext::no_statistics();
        let plan = Optimizer::new(ctx.clone())
            .plan_with_order(&q, &[1, 2, 3])
            .unwrap();
        let cfg = FragmentationConfig {
            max_fragments: 1,
            ..FragmentationConfig::aggressive()
        };
        assert!(choose_cuts(&plan, &ctx, &cfg).len() <= 1);
    }
}
