//! Cardinality and cost estimation with runtime re-estimation (paper §4.2).

use std::collections::HashMap;
use std::sync::Arc;

use tukwila_stats::{ArrivalSchedule, DeliveryModel, SelectivityCatalog};
use tukwila_storage::ExprSig;

use crate::logical::LogicalQuery;
use crate::phys::PreAggMode;

/// Per-operation cost constants (arbitrary units ≈ ns/tuple). Merge joins
/// are "slightly more efficient than a pipelined hash join" (§5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    pub hash_insert: f64,
    pub hash_probe: f64,
    pub merge_step: f64,
    pub output: f64,
    pub preagg_tuple: f64,
    pub agg_tuple: f64,
    pub scan_tuple: f64,
    /// Cost units charged per microsecond of *residual* source-delivery
    /// wait — the part of the arrival schedule (published by the
    /// federation layer) that CPU work elsewhere in the plan cannot
    /// overlap. Because joins credit the overlap, delivery-bound leaves
    /// now perturb join ordering: a plan that hides a slow delivery under
    /// a CPU-heavy sibling subtree prices cheaper than one that doesn't.
    pub delivery_per_us: f64,
    /// Timeline µs of driver CPU per cost-model unit, used to convert a
    /// subtree's CPU estimate into overlappable wall time when crediting
    /// delivery overlap (and pricing fragment cuts). Corrective execution
    /// **calibrates this per host** during its warmup phase — measured
    /// driver CPU µs over the CPU cost units the running plan consumed
    /// (see `CorrectiveReport::calibrated_unit_us`) — and feeds the
    /// calibrated value into every later re-optimization. The 0.1 here is
    /// the documented fallback for uncalibrated contexts: cost units are
    /// nominally ≈ ns/tuple, and the `Measured` driver spends roughly
    /// 100ns of real time per abstract unit on the repro workloads
    /// (tuple cloning, hashing).
    pub unit_us: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            hash_insert: 1.0,
            hash_probe: 1.0,
            merge_step: 0.6,
            output: 0.5,
            preagg_tuple: 0.4,
            agg_tuple: 1.0,
            scan_tuple: 0.2,
            delivery_per_us: 1.0,
            unit_us: 0.1,
        }
    }
}

/// Whether and how the optimizer inserts pre-aggregation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreAggConfig {
    /// No pre-aggregation push-down (baseline "single aggregation").
    #[default]
    Off,
    /// Insert the given operator flavor at every beneficial point.
    Insert(PreAggMode),
}

/// Everything the optimizer knows when invoked: prior (default/given)
/// cardinalities, runtime observations, and execution progress. Fresh
/// optimization uses an empty context; corrective re-optimization hands in
/// the live catalog and consumption counters.
#[derive(Clone, Default)]
pub struct OptimizerContext {
    /// The paper's default assumption when no statistics exist: "20,000
    /// tuples for every relation" (a `default_card` of 0 is replaced by
    /// 20,000).
    pub default_card: u64,
    /// Source cardinalities provided up front ("Given cardinalities" mode).
    pub given_cards: HashMap<u32, u64>,
    /// Runtime observations (shared with the execution monitor).
    pub catalog: Option<Arc<SelectivityCatalog>>,
    /// Tuples of each source already consumed by earlier phases; plans are
    /// costed over the *remaining* data.
    pub consumed: HashMap<u32, u64>,
    /// Columns on which sources are known/speculated sorted (enables merge
    /// joins).
    pub orders: HashMap<u32, usize>,
    /// Pre-aggregation policy.
    pub preagg: PreAggConfig,
    pub cost_model: CostModel,
    /// Logical subexpressions already materialized by earlier phases (the
    /// current plan's nodes plus everything in the state-structure
    /// registry). Candidate plans get a sunk-cost *credit* for these
    /// (§4.3).
    pub sunk_sigs: Vec<ExprSig>,
}

impl OptimizerContext {
    /// Whether a subexpression's result already exists from earlier phases.
    pub fn is_sunk(&self, sig: &ExprSig) -> bool {
        self.sunk_sigs.iter().any(|s| s == sig)
    }
}

impl std::fmt::Debug for OptimizerContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptimizerContext")
            .field("default_card", &self.default_card)
            .field("given_cards", &self.given_cards.len())
            .field("has_catalog", &self.catalog.is_some())
            .field("consumed", &self.consumed.len())
            .finish()
    }
}

pub const DEFAULT_CARD: u64 = 20_000;

impl OptimizerContext {
    pub fn no_statistics() -> OptimizerContext {
        OptimizerContext {
            default_card: DEFAULT_CARD,
            ..Default::default()
        }
    }

    pub fn with_cards(cards: HashMap<u32, u64>) -> OptimizerContext {
        OptimizerContext {
            default_card: DEFAULT_CARD,
            given_cards: cards,
            ..Default::default()
        }
    }

    fn effective_default(&self) -> u64 {
        if self.default_card == 0 {
            DEFAULT_CARD
        } else {
            self.default_card
        }
    }

    /// Estimated *total* cardinality of a base relation (before filters):
    /// runtime extrapolation beats given cardinalities beats the default.
    pub fn base_card(&self, rel: u32) -> f64 {
        let prior = self
            .given_cards
            .get(&rel)
            .copied()
            .unwrap_or_else(|| self.effective_default());
        if let Some(cat) = &self.catalog {
            if let Some(p) = cat.source(rel) {
                return p.extrapolated(prior) as f64;
            }
        }
        prior as f64
    }

    /// Cardinality of a base relation *not yet consumed* by earlier phases.
    pub fn remaining_card(&self, rel: u32) -> f64 {
        let total = self.base_card(rel);
        let used = self.consumed.get(&rel).copied().unwrap_or(0) as f64;
        (total - used).max(0.0)
    }

    /// Observed selectivity for a logical subexpression, if any.
    pub fn observed_sel(&self, sig: &ExprSig) -> Option<f64> {
        self.catalog.as_ref().and_then(|c| c.selectivity(sig))
    }

    /// Multiplicative-join factor for a predicate, if flagged.
    pub fn multiplicative(&self, pred_id: u64) -> Option<f64> {
        self.catalog
            .as_ref()
            .and_then(|c| c.multiplicative_factor(pred_id))
    }

    /// Observed delivery rate for a source (tuples per virtual second),
    /// when a self-profiling source (e.g. the federation adapter) has
    /// published one to the catalog.
    pub fn observed_rate(&self, rel: u32) -> Option<f64> {
        self.catalog.as_ref().and_then(|c| c.source_rate(rel))
    }

    /// Observed arrival schedule for a source, when a self-profiling
    /// source has published one to the catalog.
    pub fn source_schedule(&self, rel: u32) -> Option<ArrivalSchedule> {
        self.catalog.as_ref().and_then(|c| c.source_schedule(rel))
    }

    /// The shared [`DeliveryModel`] over every relation the catalog has a
    /// schedule for. Unprofiled relations answer "arrives immediately"
    /// (the local/fast seed assumption). This is the single object the
    /// optimizer's scan/join costing, the fragmentation pass, and (via
    /// the federation layer's own construction) the hedging gate price
    /// delivery with.
    pub fn delivery_model(&self) -> DeliveryModel {
        let mut model = DeliveryModel::default();
        if let Some(cat) = &self.catalog {
            for (rel, schedule) in cat.source_schedules() {
                model.insert(rel, schedule);
            }
        }
        model
    }
}

/// Which slice of the data a [`CardEstimator`] prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateMode {
    /// Full estimated cardinalities.
    Total,
    /// Only data not yet consumed by earlier phases.
    Remaining,
    /// Only data already consumed (used to compute sunk-cost credits,
    /// §4.3: the optimizer "factors in the amount of computation that has
    /// already been performed").
    Consumed,
}

/// Memoized cardinality estimator over relation subsets (bitsets).
///
/// Estimation follows §4.2: an observed selectivity for the exact logical
/// signature wins; otherwise the estimate is the *average* of (a) the
/// System-R independence estimate and (b) the key–foreign-key speculation
/// from each observed "parent" subexpression that this expression extends
/// by one leaf; multiplicative-predicate flags scale the result.
pub struct CardEstimator<'a> {
    pub q: &'a LogicalQuery,
    pub ctx: &'a OptimizerContext,
    pub mode: EstimateMode,
    memo: HashMap<u32, f64>,
}

impl<'a> CardEstimator<'a> {
    pub fn new(q: &'a LogicalQuery, ctx: &'a OptimizerContext, remaining: bool) -> Self {
        CardEstimator::with_mode(
            q,
            ctx,
            if remaining {
                EstimateMode::Remaining
            } else {
                EstimateMode::Total
            },
        )
    }

    pub fn with_mode(q: &'a LogicalQuery, ctx: &'a OptimizerContext, mode: EstimateMode) -> Self {
        CardEstimator {
            q,
            ctx,
            mode,
            memo: HashMap::new(),
        }
    }

    /// Mode-dependent raw cardinality of a base relation.
    pub fn raw_card(&self, rel: u32) -> f64 {
        match self.mode {
            EstimateMode::Total => self.ctx.base_card(rel),
            EstimateMode::Remaining => self.ctx.remaining_card(rel),
            EstimateMode::Consumed => self.ctx.consumed.get(&rel).copied().unwrap_or(0) as f64,
        }
    }

    fn sig_of(&self, set: u32) -> ExprSig {
        let rels: Vec<u32> = (0..self.q.rels.len())
            .filter(|i| set & (1 << i) != 0)
            .map(|i| self.q.rels[i].rel_id)
            .collect();
        ExprSig::new(rels)
    }

    /// Filtered cardinality of one base relation (by index).
    fn leaf_card(&self, idx: usize) -> f64 {
        let rel = &self.q.rels[idx];
        let raw = self.raw_card(rel.rel_id);
        // When the leaf's post-filter output has been observed, use the
        // observed selectivity; else the default estimate.
        let sig = ExprSig::single(rel.rel_id);
        let sel = self.ctx.observed_sel(&sig).unwrap_or(rel.filter_sel);
        raw * sel.clamp(0.0, 1.0)
    }

    /// Default selectivity of a join predicate: the System-R-style
    /// `1 / max(V(A,L), V(A,R))` with the distinct count of the key side
    /// approximated by the smaller relation's cardinality — i.e.
    /// `|L ⋈ R| ≈ max(|L|, |R|)`, exact for key–foreign-key joins.
    /// Non-key predicates (like Q5's nationkey cycle edge) violate the
    /// assumption and blow up at runtime, which is precisely what the
    /// multiplicative-join flags then record (§4.2).
    fn default_pred_sel(&self, left_card: f64, right_card: f64) -> f64 {
        1.0 / left_card.min(right_card).max(1.0)
    }

    /// Estimated cardinality of the join of the relations in `set`.
    pub fn card(&mut self, set: u32) -> f64 {
        if let Some(&c) = self.memo.get(&set) {
            return c;
        }
        let n = set.count_ones();
        let est = if n == 1 {
            self.leaf_card(set.trailing_zeros() as usize)
        } else {
            self.estimate_join_set(set)
        };
        let est = est.max(0.0);
        self.memo.insert(set, est);
        est
    }

    fn estimate_join_set(&mut self, set: u32) -> f64 {
        let sig = self.sig_of(set);
        // Exact observation wins. Observed selectivity is defined over the
        // product of *base* (unfiltered) input cardinalities (§4.2).
        if let Some(sel) = self.ctx.observed_sel(&sig) {
            let mut product = 1.0;
            for i in 0..self.q.rels.len() {
                if set & (1 << i) != 0 {
                    product *= self.raw_card(self.q.rels[i].rel_id);
                }
            }
            return sel * product;
        }

        // (a) System-R independence estimate.
        let mut sys_r = 1.0;
        for i in 0..self.q.rels.len() {
            if set & (1 << i) != 0 {
                sys_r *= self.card(1 << i).max(1e-9);
            }
        }
        let mut applied_preds = 0;
        for p in &self.q.preds {
            let li = self.q.rel_index(p.left_rel).expect("validated");
            let ri = self.q.rel_index(p.right_rel).expect("validated");
            if set & (1 << li) != 0 && set & (1 << ri) != 0 {
                let cl = self.card(1 << li);
                let cr = self.card(1 << ri);
                sys_r *= self.default_pred_sel(cl, cr);
                applied_preds += 1;
            }
        }
        if applied_preds == 0 && set.count_ones() > 1 {
            // Cross product: no predicate reduces it.
        }

        // (b) Key–foreign-key speculation from observed parents: for each
        // leaf r in `set`, if `set \ {r}` has an observation, speculate the
        // join with r preserves that cardinality.
        let mut candidates = vec![sys_r];
        for i in 0..self.q.rels.len() {
            let bit = 1 << i;
            if set & bit != 0 && set.count_ones() > 1 {
                let rest = set & !bit;
                let rest_sig = self.sig_of(rest);
                if self.ctx.observed_sel(&rest_sig).is_some() {
                    candidates.push(self.card(rest));
                }
            }
        }
        let mut est = candidates.iter().sum::<f64>() / candidates.len() as f64;

        // Multiplicative flags: only when we had no direct observation for
        // any pairwise signature of the flagged predicate.
        for p in &self.q.preds {
            let li = self.q.rel_index(p.left_rel).expect("validated");
            let ri = self.q.rel_index(p.right_rel).expect("validated");
            if set & (1 << li) != 0 && set & (1 << ri) != 0 {
                let pair_sig = ExprSig::new(vec![p.left_rel, p.right_rel]);
                if self.ctx.observed_sel(&pair_sig).is_none() {
                    if let Some(f) = self.ctx.multiplicative(p.id) {
                        est *= f.max(1.0);
                    }
                }
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{JoinPred, QueryRel};
    use tukwila_relation::{DataType, Field, Schema};
    use tukwila_stats::selectivity::SourceProgress;

    fn rel(id: u32, name: &str) -> QueryRel {
        QueryRel::new(
            id,
            name,
            Schema::new(vec![Field::new(format!("{name}.k"), DataType::Int)]),
        )
    }

    fn chain3() -> LogicalQuery {
        LogicalQuery::new(
            vec![rel(1, "a"), rel(2, "b"), rel(3, "c")],
            vec![
                JoinPred {
                    id: 1,
                    left_rel: 1,
                    left_col: 0,
                    right_rel: 2,
                    right_col: 0,
                },
                JoinPred {
                    id: 2,
                    left_rel: 2,
                    left_col: 0,
                    right_rel: 3,
                    right_col: 0,
                },
            ],
        )
    }

    #[test]
    fn default_card_applies_without_stats() {
        let q = chain3();
        let ctx = OptimizerContext::no_statistics();
        let mut est = CardEstimator::new(&q, &ctx, false);
        assert_eq!(est.card(0b001), 20_000.0);
        // Key-FK default: |a ⋈ b| ≈ min side = 20k.
        let ab = est.card(0b011);
        assert!((ab - 20_000.0).abs() < 1.0, "ab={ab}");
    }

    #[test]
    fn given_cards_override_default() {
        let q = chain3();
        let mut cards = HashMap::new();
        cards.insert(1, 100u64);
        cards.insert(2, 10_000);
        cards.insert(3, 500);
        let ctx = OptimizerContext::with_cards(cards);
        let mut est = CardEstimator::new(&q, &ctx, false);
        assert_eq!(est.card(0b001), 100.0);
        let ab = est.card(0b011);
        // Key-FK default: the join preserves the foreign-key (larger) side.
        assert!((ab - 10_000.0).abs() < 1.0, "|a⋈b| ≈ |b| = {ab}");
    }

    #[test]
    fn observed_selectivity_dominates() {
        let q = chain3();
        let catalog = Arc::new(SelectivityCatalog::new());
        // |a⋈b| observed = 5000 over base product 20k*20k.
        catalog.observe_subexpr(ExprSig::new(vec![1, 2]), 5_000, 20_000.0 * 20_000.0);
        let ctx = OptimizerContext {
            catalog: Some(catalog),
            ..OptimizerContext::no_statistics()
        };
        let mut est = CardEstimator::new(&q, &ctx, false);
        let ab = est.card(0b011);
        assert!((ab - 5_000.0).abs() < 1.0, "ab={ab}");
        // Parent speculation: abc averages sysR with observed ab.
        let abc = est.card(0b111);
        assert!(abc > 0.0 && abc < 20_000.0 * 20_000.0);
    }

    #[test]
    fn multiplicative_flag_inflates_unobserved() {
        let q = chain3();
        let catalog = Arc::new(SelectivityCatalog::new());
        catalog.flag_multiplicative(1, 10.0);
        let flagged_ctx = OptimizerContext {
            catalog: Some(catalog),
            ..OptimizerContext::no_statistics()
        };
        let plain_ctx = OptimizerContext::no_statistics();
        let mut flagged = CardEstimator::new(&q, &flagged_ctx, false);
        let mut plain = CardEstimator::new(&q, &plain_ctx, false);
        assert!(flagged.card(0b011) > 5.0 * plain.card(0b011));
    }

    #[test]
    fn remaining_mode_subtracts_consumed() {
        let q = chain3();
        let mut ctx = OptimizerContext::no_statistics();
        ctx.consumed.insert(1, 15_000);
        let mut est = CardEstimator::new(&q, &ctx, true);
        assert_eq!(est.card(0b001), 5_000.0);
        let mut est_total = CardEstimator::new(&q, &ctx, false);
        assert_eq!(est_total.card(0b001), 20_000.0);
    }

    #[test]
    fn extrapolated_source_beats_default() {
        let _q = chain3();
        let catalog = Arc::new(SelectivityCatalog::new());
        catalog.observe_source(
            1,
            SourceProgress {
                tuples_read: 1000,
                fraction_read: Some(0.1),
                eof: false,
            },
        );
        let ctx = OptimizerContext {
            catalog: Some(catalog),
            ..OptimizerContext::no_statistics()
        };
        assert_eq!(ctx.base_card(1), 10_000.0);
        assert_eq!(ctx.base_card(2), 20_000.0);
    }
}
