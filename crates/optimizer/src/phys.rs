//! Physical plans: operator trees with resolved schemas and column maps.

use tukwila_relation::agg::AggFunc;
use tukwila_relation::{Expr, Schema};
use tukwila_storage::ExprSig;

/// Physical join algorithm choices (the iterator modules of §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysJoinAlgo {
    PipelinedHash,
    Merge,
    HybridHash,
    NestedLoops,
}

/// Pre-aggregation operator flavor at an insertion point (drives Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreAggMode {
    /// Adjustable-window pre-aggregation (§6).
    AdaptiveWindow,
    /// Traditional blocking pre-aggregation: group the entire input before
    /// emitting.
    Traditional,
    /// Pseudogroup: per-tuple schema conversion only (§3.2).
    Pseudogroup,
}

/// Where a query aggregate's value can be found in a node's output: either
/// a raw base column or a carried partial (plus a count column for `avg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialSlot {
    /// Index of the query aggregate this slot carries.
    pub agg_idx: usize,
    /// Column holding the carried value (min/max/sum partial).
    pub value_col: usize,
    /// Column holding the carried count (only for `avg`/`count`).
    pub count_col: Option<usize>,
}

/// A node in the physical plan tree.
#[derive(Debug, Clone)]
pub struct PhysNode {
    pub kind: PhysKind,
    /// Output schema of this node.
    pub schema: Schema,
    /// Mapping `(rel_id, base column) -> output position` for base columns
    /// still present in the output.
    pub col_map: Vec<((u32, usize), usize)>,
    /// Carried aggregate partials (present below pre-aggregation points).
    pub partials: Vec<PartialSlot>,
    /// Logical signature (set of base relations joined).
    pub sig: ExprSig,
    pub est_card: f64,
    /// Combined cost annotation: CPU plus the priced residual delivery
    /// wait (`est_cpu + delivery_per_us · est_wait_us`).
    pub est_cost: f64,
    /// Pure CPU portion of the estimate (cost-model units), with no
    /// delivery term folded in — what the fragmentation pass prices as
    /// overlappable work.
    pub est_cpu: f64,
    /// Residual delivery wait of the subtree (timeline µs) from the
    /// shared `DeliveryModel`: the slowest source arrival below this
    /// node, minus the sibling CPU that overlaps it at each join.
    pub est_wait_us: f64,
}

#[derive(Debug, Clone)]
pub enum PhysKind {
    Scan {
        rel: u32,
        name: String,
        filter: Option<Expr>,
    },
    Join {
        algo: PhysJoinAlgo,
        left: Box<PhysNode>,
        right: Box<PhysNode>,
        /// Join key positions in each child's output schema.
        left_col: usize,
        right_col: usize,
        pred_id: u64,
        /// Extra equality conditions (cyclic join graphs), as position
        /// pairs in the join *output* schema; lowered to a filter above
        /// the join.
        residual: Vec<(usize, usize)>,
    },
    PreAgg {
        child: Box<PhysNode>,
        mode: PreAggMode,
        /// Grouping columns in the child's output schema.
        group_cols: Vec<usize>,
        /// `(func, input col in child schema)` for each emitted partial.
        aggs: Vec<(AggFunc, usize)>,
    },
}

impl PhysNode {
    /// Position of a base column in this node's output, if still present.
    pub fn col_of(&self, rel: u32, col: usize) -> Option<usize> {
        self.col_map
            .iter()
            .find(|((r, c), _)| *r == rel && *c == col)
            .map(|&(_, pos)| pos)
    }

    /// The partial slot carrying query aggregate `agg_idx`, if any.
    pub fn partial_for(&self, agg_idx: usize) -> Option<&PartialSlot> {
        self.partials.iter().find(|p| p.agg_idx == agg_idx)
    }

    /// All base relations below this node, in leaf order.
    pub fn rels(&self) -> Vec<u32> {
        match &self.kind {
            PhysKind::Scan { rel, .. } => vec![*rel],
            PhysKind::Join { left, right, .. } => {
                let mut v = left.rels();
                v.extend(right.rels());
                v
            }
            PhysKind::PreAgg { child, .. } => child.rels(),
        }
    }

    /// Number of join operators in the subtree.
    pub fn join_count(&self) -> usize {
        match &self.kind {
            PhysKind::Scan { .. } => 0,
            PhysKind::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            PhysKind::PreAgg { child, .. } => child.join_count(),
        }
    }

    /// Render the tree as a compact one-line expression, e.g.
    /// `((orders ⋈ customer) ⋈ lineitem)`.
    pub fn describe(&self) -> String {
        match &self.kind {
            PhysKind::Scan { name, .. } => name.clone(),
            PhysKind::Join {
                left, right, algo, ..
            } => {
                let op = match algo {
                    PhysJoinAlgo::PipelinedHash => "⋈",
                    PhysJoinAlgo::Merge => "⋈ₘ",
                    PhysJoinAlgo::HybridHash => "⋈ₕ",
                    PhysJoinAlgo::NestedLoops => "⋈ₙ",
                };
                format!("({} {} {})", left.describe(), op, right.describe())
            }
            PhysKind::PreAgg { child, mode, .. } => {
                let tag = match mode {
                    PreAggMode::AdaptiveWindow => "preagg",
                    PreAggMode::Traditional => "preagg!",
                    PreAggMode::Pseudogroup => "pseudo",
                };
                format!("{tag}[{}]", child.describe())
            }
        }
    }
}

/// The final aggregation over the root node's output.
#[derive(Debug, Clone)]
pub struct PhysAgg {
    /// Grouping columns in root-output positions.
    pub group_cols: Vec<usize>,
    /// `(func, input col)` over the root output (already coalesced when
    /// consuming partials).
    pub aggs: Vec<(AggFunc, usize)>,
    /// Optional projection over the aggregation output (reassembles `avg`
    /// from sum/count partials).
    pub post_project: Option<(Vec<Expr>, Schema)>,
}

/// A complete physical plan.
#[derive(Debug, Clone)]
pub struct PhysPlan {
    pub root: PhysNode,
    pub agg: Option<PhysAgg>,
    pub est_cost: f64,
}

impl PhysPlan {
    pub fn describe(&self) -> String {
        match &self.agg {
            Some(_) => format!("Γ[{}]", self.root.describe()),
            None => self.root.describe(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field};

    fn scan(rel: u32, name: &str) -> PhysNode {
        let schema = Schema::new(vec![Field::new(format!("{name}.k"), DataType::Int)]);
        PhysNode {
            kind: PhysKind::Scan {
                rel,
                name: name.into(),
                filter: None,
            },
            col_map: vec![((rel, 0), 0)],
            partials: vec![],
            sig: ExprSig::single(rel),
            est_card: 100.0,
            est_cost: 100.0,
            est_cpu: 100.0,
            est_wait_us: 0.0,
            schema,
        }
    }

    fn join(l: PhysNode, r: PhysNode) -> PhysNode {
        let schema = l.schema.concat(&r.schema);
        let mut col_map = l.col_map.clone();
        let off = l.schema.arity();
        col_map.extend(r.col_map.iter().map(|&((rel, c), p)| ((rel, c), p + off)));
        let sig = l.sig.union(&r.sig);
        PhysNode {
            kind: PhysKind::Join {
                algo: PhysJoinAlgo::PipelinedHash,
                left: Box::new(l),
                right: Box::new(r),
                left_col: 0,
                right_col: 0,
                pred_id: 1,
                residual: vec![],
            },
            col_map,
            partials: vec![],
            sig,
            est_card: 100.0,
            est_cost: 300.0,
            est_cpu: 300.0,
            est_wait_us: 0.0,
            schema,
        }
    }

    #[test]
    fn col_map_lookup_across_join() {
        let j = join(scan(1, "a"), scan(2, "b"));
        assert_eq!(j.col_of(1, 0), Some(0));
        assert_eq!(j.col_of(2, 0), Some(1));
        assert_eq!(j.col_of(3, 0), None);
        assert_eq!(j.rels(), vec![1, 2]);
        assert_eq!(j.join_count(), 1);
    }

    #[test]
    fn describe_renders_tree() {
        let j = join(join(scan(1, "a"), scan(2, "b")), scan(3, "c"));
        assert_eq!(j.describe(), "((a ⋈ b) ⋈ c)");
        assert_eq!(j.join_count(), 2);
    }
}
