//! Plain-text table rendering for the harness output.

/// A simple fixed-width text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(c.chars().count());
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with appropriate precision.
pub fn secs(s: f64) -> String {
    if s >= 10.0 {
        format!("{s:.1}")
    } else if s >= 0.1 {
        format!("{s:.2}")
    } else {
        format!("{s:.3}")
    }
}

/// Format a mean ± 95% CI pair.
pub fn secs_ci(mean: f64, ci: f64) -> String {
    if ci > 0.0 {
        format!("{}±{}", secs(mean), secs(ci))
    } else {
        secs(mean)
    }
}

/// Format a tuple count compactly (731K style, like the paper's tables).
pub fn count(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    fn count_formats() {
        assert_eq!(count(42), "42");
        assert_eq!(count(1500), "1.5K");
        assert_eq!(count(731_000), "731K");
        assert_eq!(count(2_500_000), "2.5M");
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(123.4), "123.4");
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(secs(0.0123), "0.012");
        assert!(secs_ci(1.0, 0.1).contains('±'));
    }
}
