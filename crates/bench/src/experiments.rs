//! One function per paper table/figure. Each returns rendered text tables;
//! the `repro` binary prints them.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::sync::Arc;

use tukwila_core::{
    run_static, run_static_with_driver, ComplementaryJoinPair, CorrectiveConfig, CorrectiveExec,
    RouterKind,
};
use tukwila_datagen::{perturb, Dataset, TableId, Zipf};
use tukwila_exec::join::PipelinedHashJoin;
use tukwila_exec::op::IncOp;
use tukwila_exec::reference::canonicalize_approx;
use tukwila_exec::{CpuCostModel, SimDriver};
use tukwila_federation::{
    ConcurrentFederatedSource, FederatedSource, FederationConfig, FederationReport,
};
use tukwila_optimizer::{OptimizerContext, PreAggConfig, PreAggMode};
use tukwila_relation::{Tuple, Value};
use tukwila_stats::estimate::JoinEstimator;
use tukwila_stats::{
    hedge_signatures, Clock, QuerySummary, TraceEvent, TraceSink, VirtualClock, WallClock,
};

use tukwila_serve::{QuerySpec, ServeMode, Server, ServerConfig};

use crate::fmt::{count, secs, secs_ci, TextTable};
use crate::setup::{
    concurrent_mirror_sources, datasets, federated_mirror_sources, federated_mirror_sources_traced,
    local_sources, mean_ci, pinned_mirror_sources, serve_degraded_catalog,
    slow_customer_mirror_sources, slow_customer_mirror_sources_traced, true_cards,
    wireless_sources, ExpConfig, MirrorKind, WorkloadQuery,
};
use tukwila_source::Source;

/// Detail captured from an adaptive run (for Tables 1/2).
#[derive(Debug, Clone, Default)]
pub struct AdaptiveDetail {
    pub phases: usize,
    pub stitch_secs: f64,
    pub reused: usize,
    pub discarded: usize,
}

fn corrective_cfg(
    cfg: &ExpConfig,
    given: Option<std::collections::HashMap<u32, u64>>,
    order: Option<Vec<u32>>,
) -> CorrectiveConfig {
    CorrectiveConfig {
        batch_size: cfg.batch_size,
        cpu: CpuCostModel::Measured,
        // Looser than the library defaults, mirroring the paper's eager
        // 1-second polling: its executions settled at 2-4 phases.
        poll_every_batches: 6,
        switch_threshold: 0.8,
        max_phases: 8,
        warmup_batches: 4,
        preagg: PreAggConfig::Off,
        given_cards: given,
        initial_order: order,
        min_remaining_fraction: 0.15,
        stitch_reuse: true,
        clock: None,
        fragments: None,
        ..Default::default()
    }
}

/// Figures 2/3 plus Tables 1/2: the five-strategy comparison over both
/// datasets and all four queries. `wireless` selects the Figure 3 / Table 2
/// variant (bursty sources, virtual completion time); otherwise Figure 2 /
/// Table 1 (local sources, CPU time).
pub fn corrective_suite(cfg: &ExpConfig, wireless: bool) -> (String, String) {
    let mut figure = TextTable::new(&[
        "query-dataset",
        "Static NoStats",
        "Static Cards",
        "Adaptive NoStats",
        "Adaptive Cards",
        "PlanPart NoStats",
    ]);
    let mut table = TextTable::new(&[
        "query-dataset",
        "mode",
        "phases",
        "stitch-up s",
        "reused",
        "discarded",
    ]);

    for w in WorkloadQuery::all() {
        for (dname, d) in datasets(cfg).iter() {
            eprintln!("[suite] query {} ({dname})", w.name());
            let q = w.query();
            let cards = true_cards(d, &q);
            let order = w.paper_nostats_order();
            let make_sources = |q: &tukwila_optimizer::LogicalQuery| {
                if wireless {
                    wireless_sources(d, q, cfg)
                } else {
                    local_sources(d, q)
                }
            };
            let metric = |exec: &tukwila_exec::ExecReport| {
                if wireless {
                    exec.virtual_us as f64 / 1e6
                } else {
                    exec.cpu_us as f64 / 1e6
                }
            };

            let mut reference: Option<Vec<String>> = None;
            let mut check = |rows: &[Tuple], label: &str| {
                let canon = canonicalize_approx(rows);
                match &reference {
                    None => reference = Some(canon),
                    Some(r) => assert_eq!(
                        r,
                        &canon,
                        "strategy {label} disagrees on {}-{dname}",
                        w.name()
                    ),
                }
            };

            // 1. Static, no statistics (pinned to the paper's plan, see
            //    WorkloadQuery::paper_nostats_order).
            eprintln!("[suite]   static-nostats");
            let mut static_ns = Vec::new();
            for _ in 0..cfg.runs {
                let mut s = make_sources(&q);
                let run = tukwila_core::run_static_from(
                    &q,
                    &mut s,
                    OptimizerContext::no_statistics(),
                    cfg.batch_size,
                    CpuCostModel::Measured,
                    order.as_deref(),
                )
                .expect("static nostats");
                static_ns.push(metric(&run.exec));
                check(&run.rows, "static-nostats");
            }

            // 2. Static, given cardinalities.
            eprintln!("[suite]   static-cards");
            let mut static_c = Vec::new();
            for _ in 0..cfg.runs {
                let mut s = make_sources(&q);
                let run = tukwila_core::run_static(
                    &q,
                    &mut s,
                    OptimizerContext::with_cards(cards.clone()),
                    cfg.batch_size,
                    CpuCostModel::Measured,
                )
                .expect("static cards");
                static_c.push(metric(&run.exec));
                check(&run.rows, "static-cards");
            }

            // 3. Adaptive, no statistics (same pinned phase-0 plan).
            eprintln!("[suite]   adaptive-nostats");
            let mut adaptive_ns = Vec::new();
            let mut detail_ns = AdaptiveDetail::default();
            for _ in 0..cfg.runs {
                let exec = CorrectiveExec::new(q.clone(), corrective_cfg(cfg, None, order.clone()));
                let mut s = make_sources(&q);
                let report = exec.run(&mut s).expect("adaptive nostats");
                adaptive_ns.push(metric(&report.exec));
                detail_ns = AdaptiveDetail {
                    phases: report.phase_count(),
                    stitch_secs: report.stitch_us as f64 / 1e6,
                    reused: report.reuse.reused_tuples,
                    discarded: report.reuse.discarded_tuples,
                };
                check(&report.rows, "adaptive-nostats");
            }

            // 4. Adaptive, given cardinalities.
            eprintln!("[suite]   adaptive-cards");
            let mut adaptive_c = Vec::new();
            let mut detail_c = AdaptiveDetail::default();
            for _ in 0..cfg.runs {
                let exec =
                    CorrectiveExec::new(q.clone(), corrective_cfg(cfg, Some(cards.clone()), None));
                let mut s = make_sources(&q);
                let report = exec.run(&mut s).expect("adaptive cards");
                adaptive_c.push(metric(&report.exec));
                detail_c = AdaptiveDetail {
                    phases: report.phase_count(),
                    stitch_secs: report.stitch_us as f64 / 1e6,
                    reused: report.reuse.reused_tuples,
                    discarded: report.reuse.discarded_tuples,
                };
                check(&report.rows, "adaptive-cards");
            }

            // 5. Plan partitioning, no statistics.
            eprintln!("[suite]   plan-partitioning");
            let mut pp_ns = Vec::new();
            for _ in 0..cfg.runs {
                let run = tukwila_core::run_plan_partitioning_from(
                    &q,
                    make_sources(&q),
                    OptimizerContext::no_statistics(),
                    cfg.batch_size,
                    CpuCostModel::Measured,
                    order.as_deref(),
                )
                .expect("plan partitioning");
                pp_ns.push(metric(&run.exec));
                check(&run.rows, "plan-partitioning");
            }

            let label = format!("{} ({dname})", w.name());
            let cells = vec![
                label.clone(),
                fmt_ci(&static_ns),
                fmt_ci(&static_c),
                fmt_ci(&adaptive_ns),
                fmt_ci(&adaptive_c),
                fmt_ci(&pp_ns),
            ];
            figure.row(cells);

            table.row(vec![
                label.clone(),
                "no statistics".into(),
                detail_ns.phases.to_string(),
                if detail_ns.phases > 1 {
                    secs(detail_ns.stitch_secs)
                } else {
                    "-".into()
                },
                if detail_ns.phases > 1 {
                    count(detail_ns.reused)
                } else {
                    "-".into()
                },
                if detail_ns.phases > 1 {
                    count(detail_ns.discarded)
                } else {
                    "-".into()
                },
            ]);
            table.row(vec![
                label,
                "given cardinalities".into(),
                detail_c.phases.to_string(),
                if detail_c.phases > 1 {
                    secs(detail_c.stitch_secs)
                } else {
                    "-".into()
                },
                if detail_c.phases > 1 {
                    count(detail_c.reused)
                } else {
                    "-".into()
                },
                if detail_c.phases > 1 {
                    count(detail_c.discarded)
                } else {
                    "-".into()
                },
            ]);
        }
    }
    (figure.render(), table.render())
}

fn fmt_ci(samples: &[f64]) -> String {
    let (m, ci) = mean_ci(samples);
    secs_ci(m, ci)
}

/// Figure 5 + Table 3: pipelined hash join vs complementary join pair
/// (naive and priority-queue routers) over LINEITEM ⋈ ORDERS with
/// increasing disorder.
pub fn complementary_suite(cfg: &ExpConfig) -> (String, String) {
    let mut figure = TextTable::new(&["dataset", "PHJ s", "CompJoin s", "CompJoin+PQ s"]);
    let mut table = TextTable::new(&["dataset", "router", "hash", "merge", "stitch"]);

    // The paper's six data points: uniform, skewed, uniform 1%, skewed 1%,
    // skewed 10%, skewed 50%.
    let [(_, uni), (_, sk)] = datasets(cfg);
    let cases: Vec<(String, &Dataset, f64)> = vec![
        ("Uniform".into(), &uni, 0.0),
        ("Skewed".into(), &sk, 0.0),
        ("Uniform, 1% reordered".into(), &uni, 0.01),
        ("Skewed, 1% reordered".into(), &sk, 0.01),
        ("Skewed, 10% reordered".into(), &sk, 0.1),
        ("Skewed, 50% reordered".into(), &sk, 0.5),
    ];

    for (label, d, frac) in cases {
        let mut orders = d.orders.clone();
        let mut lineitem = d.lineitem.clone();
        if frac > 0.0 {
            perturb::reorder_fraction(&mut orders, frac, cfg.seed);
            perturb::reorder_fraction(&mut lineitem, frac, cfg.seed + 1);
        }

        let run_phj = |runs: usize| -> Vec<f64> {
            (0..runs)
                .map(|_| {
                    let mut j = PipelinedHashJoin::new(
                        Dataset::schema(TableId::Orders),
                        Dataset::schema(TableId::Lineitem),
                        0,
                        0,
                    );
                    let mut out = Vec::new();
                    let start = Instant::now();
                    for c in orders.chunks(cfg.batch_size) {
                        j.push(0, c, &mut out).unwrap();
                    }
                    for c in lineitem.chunks(cfg.batch_size) {
                        j.push(1, c, &mut out).unwrap();
                    }
                    start.elapsed().as_secs_f64()
                })
                .collect()
        };
        let run_comp = |router: RouterKind, runs: usize| {
            let mut times = Vec::new();
            let mut stats = tukwila_core::ComplementaryStats::default();
            for _ in 0..runs {
                let mut j = ComplementaryJoinPair::new(
                    Dataset::schema(TableId::Orders),
                    Dataset::schema(TableId::Lineitem),
                    0,
                    0,
                    router,
                );
                let mut out = Vec::new();
                let start = Instant::now();
                for c in orders.chunks(cfg.batch_size) {
                    j.push(0, c, &mut out).unwrap();
                }
                for c in lineitem.chunks(cfg.batch_size) {
                    j.push(1, c, &mut out).unwrap();
                }
                j.finish_input(0, &mut out).unwrap();
                j.finish_input(1, &mut out).unwrap();
                j.finish(&mut out).unwrap();
                times.push(start.elapsed().as_secs_f64());
                stats = j.stats();
            }
            (times, stats)
        };

        // One warm-up execution per strategy (allocator/cache effects),
        // then the measured runs.
        let phj = &run_phj(cfg.runs + 1)[1..];
        let (naive_all, naive_s) = run_comp(RouterKind::Naive, cfg.runs + 1);
        let (pq_all, pq_s) = run_comp(RouterKind::PriorityQueue(1024), cfg.runs + 1);
        let (naive_t, pq_t) = (&naive_all[1..], &pq_all[1..]);

        figure.row(vec![
            label.clone(),
            fmt_ci(phj),
            fmt_ci(naive_t),
            fmt_ci(pq_t),
        ]);
        for (router, s) in [("naive", naive_s), ("priority queue", pq_s)] {
            table.row(vec![
                label.clone(),
                router.into(),
                count(s.hash_tuples as usize),
                count(s.merge_tuples as usize),
                count(s.stitch_tuples as usize),
            ]);
        }
    }
    (figure.render(), table.render())
}

/// Figure 6: single aggregation vs adjustable-window pre-aggregation vs
/// traditional pre-aggregation, all queries, both datasets.
pub fn preagg_suite(cfg: &ExpConfig) -> String {
    let mut figure = TextTable::new(&[
        "query-dataset",
        "Single Agg s",
        "Adjustable-Window s",
        "Traditional s",
    ]);
    for w in WorkloadQuery::all() {
        for (dname, d) in datasets(cfg).iter() {
            let q = w.query();
            let cards = true_cards(d, &q);
            let mut reference: Option<Vec<String>> = None;
            let mut run_mode = |preagg: PreAggConfig| -> Vec<f64> {
                (0..cfg.runs)
                    .map(|_| {
                        let mut ctx = OptimizerContext::with_cards(cards.clone());
                        ctx.preagg = preagg;
                        let mut s = local_sources(d, &q);
                        let run = tukwila_core::run_static(
                            &q,
                            &mut s,
                            ctx,
                            cfg.batch_size,
                            CpuCostModel::Measured,
                        )
                        .expect("preagg run");
                        let canon = canonicalize_approx(&run.rows);
                        match &reference {
                            None => reference = Some(canon),
                            Some(r) => assert_eq!(r, &canon, "preagg mode disagrees"),
                        }
                        run.exec.cpu_us as f64 / 1e6
                    })
                    .collect()
            };
            let single = run_mode(PreAggConfig::Off);
            let window = run_mode(PreAggConfig::Insert(PreAggMode::AdaptiveWindow));
            let trad = run_mode(PreAggConfig::Insert(PreAggMode::Traditional));
            figure.row(vec![
                format!("{} ({dname})", w.name()),
                fmt_ci(&single),
                fmt_ci(&window),
                fmt_ci(&trad),
            ]);
        }
    }
    figure.render()
}

/// §4.5: mid-stream join-size prediction with incremental histograms plus
/// order detection, and the overhead of histogram maintenance.
pub fn selectivity_suite(cfg: &ExpConfig) -> String {
    let d = Dataset::generate(tukwila_datagen::DatasetConfig::uniform(cfg.scale));
    let n_orders = d.orders.len();
    // The paper's side table: |orders|-scaled Zipf table with a *random*
    // Zipf parameter, in random order; a second Zipf attribute joins
    // LINEITEM.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let z_param: f64 = rng.gen_range(0.3..1.0);
    let zipf = Zipf::new(n_orders, z_param);
    // Paper proportion: a 100k-row side table against 150k orders.
    let z_rows = (n_orders * 2 / 3).max(1000);
    let ztable: Vec<Tuple> = (0..z_rows)
        .map(|_| {
            Tuple::new(vec![
                Value::Int(zipf.sample(&mut rng) as i64),
                Value::Int(zipf.sample(&mut rng) as i64),
            ])
        })
        .collect();

    // Ground truth.
    let two_way_actual = join_count(&d.orders, 0, &ztable, 0);
    let j2: Vec<Tuple> = join_tuples(&d.orders, 0, &ztable, 0);
    let three_way_actual = join_count(&j2, d.orders[0].arity() + 1, &d.lineitem, 0);

    let mut table = TextTable::new(&[
        "fraction read",
        "2-way est/actual",
        "3-way est/actual",
        "orders sorted-key?",
    ]);
    for frac in [0.25, 0.5, 0.6, 0.75, 1.0] {
        let no = (n_orders as f64 * frac) as usize;
        let nz = (ztable.len() as f64 * frac) as usize;
        let nl = (d.lineitem.len() as f64 * frac) as usize;

        let mut est2 = JoinEstimator::new(50);
        for t in &d.orders[..no] {
            est2.left.observe(t.get(0));
        }
        for t in &ztable[..nz] {
            est2.right.observe(t.get(0));
        }
        let e2 = est2.estimate_full(frac, frac);

        // 3-way: the prefix of the 2-way output (what a pipelined plan has
        // actually produced) is observed on the second Zipf attribute, its
        // histogram extrapolated to the estimated full 2-way size.
        let prefix_j2 = join_tuples(&d.orders[..no], 0, &ztable[..nz], 0);
        let mut est3 = JoinEstimator::new(50);
        let lkey_col = d.orders[0].arity() + 1;
        for t in &prefix_j2 {
            est3.left.observe(t.get(lkey_col));
        }
        for t in &d.lineitem[..nl] {
            est3.right.observe(t.get(0));
        }
        let j2_fraction = if e2 > 0.0 {
            (prefix_j2.len() as f64 / e2).clamp(1e-6, 1.0)
        } else {
            1.0
        };
        let e3 = est3.estimate_full(j2_fraction, frac);

        table.row(vec![
            format!("{:.0}%", frac * 100.0),
            format!("{:.2}", e2 / two_way_actual.max(1) as f64),
            format!("{:.2}", e3 / three_way_actual.max(1) as f64),
            format!("{}", est2.left.is_sorted_key()),
        ]);
    }

    // Histogram maintenance overhead: the same 2-way join with and without
    // per-tuple statistics on three columns (the paper saw ≈+50%: 6s→11s).
    let bare = time_join(&d.orders, &ztable, cfg.batch_size, false);
    let with_hist = time_join(&d.orders, &ztable, cfg.batch_size, true);
    let mut out = String::new();
    out.push_str(&format!(
        "zipf parameter: {z_param:.2}; 2-way actual: {}; 3-way actual: {}\n\n",
        count(two_way_actual),
        count(three_way_actual)
    ));
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nhistogram overhead: join {:.3}s -> {:.3}s with 3x 50-bucket incremental histograms (+{:.0}%)\n",
        bare,
        with_hist,
        (with_hist / bare - 1.0) * 100.0
    ));
    out
}

fn join_tuples(left: &[Tuple], lcol: usize, right: &[Tuple], rcol: usize) -> Vec<Tuple> {
    let mut j = PipelinedHashJoin::new(
        tukwila_relation::Schema::empty(),
        tukwila_relation::Schema::empty(),
        lcol,
        rcol,
    );
    let mut out = Vec::new();
    j.push(0, left, &mut out).unwrap();
    j.push(1, right, &mut out).unwrap();
    out
}

fn join_count(left: &[Tuple], lcol: usize, right: &[Tuple], rcol: usize) -> usize {
    join_tuples(left, lcol, right, rcol).len()
}

fn time_join(orders: &[Tuple], ztable: &[Tuple], batch: usize, with_hist: bool) -> f64 {
    use tukwila_stats::DynamicHistogram;
    let mut h1 = DynamicHistogram::new(50);
    let mut h2 = DynamicHistogram::new(50);
    let mut h3 = DynamicHistogram::new(50);
    let mut j = PipelinedHashJoin::new(
        tukwila_relation::Schema::empty(),
        tukwila_relation::Schema::empty(),
        0,
        0,
    );
    let mut out = Vec::new();
    let start = Instant::now();
    for c in orders.chunks(batch) {
        if with_hist {
            for t in c {
                h1.insert_value(t.get(0));
            }
        }
        j.push(0, c, &mut out).unwrap();
    }
    for c in ztable.chunks(batch) {
        if with_hist {
            for t in c {
                h2.insert_value(t.get(0));
                h3.insert_value(t.get(1));
            }
        }
        j.push(1, c, &mut out).unwrap();
    }
    start.elapsed().as_secs_f64()
}

/// Example 2.1 demonstration used by the `all` subcommand header.
pub fn flights_recovery(cfg: &ExpConfig) -> String {
    let data = tukwila_datagen::flights::generate(
        (2000.0 * cfg.scale * 50.0) as usize + 100,
        (30000.0 * cfg.scale * 50.0) as usize + 500,
        4,
        cfg.seed,
    );
    let q = tukwila_datagen::flights::query();
    let exec = CorrectiveExec::new(q, corrective_cfg(cfg, None, None));
    let mut sources: Vec<Box<dyn tukwila_source::Source>> = vec![
        Box::new(tukwila_source::MemSource::new(
            tukwila_datagen::flights::FLIGHTS,
            "F",
            tukwila_datagen::flights::flights_schema(),
            data.flights.clone(),
        )),
        Box::new(tukwila_source::MemSource::new(
            tukwila_datagen::flights::TRAVELERS,
            "T",
            tukwila_datagen::flights::travelers_schema(),
            data.travelers.clone(),
        )),
        Box::new(tukwila_source::MemSource::new(
            tukwila_datagen::flights::CHILDREN,
            "C",
            tukwila_datagen::flights::children_schema(),
            data.children.clone(),
        )),
    ];
    let report = exec.run(&mut sources).expect("flights run");
    format!(
        "Example 2.1 (flights): {} phases, {} groups, {:.3}s\n",
        report.phase_count(),
        report.rows.len(),
        report.exec.cpu_us as f64 / 1e6
    )
}

/// Mirror-failover scenario (federation layer): every base relation of
/// Q3A is served by a fast-but-flaky wireless mirror (4× bandwidth, ~10%
/// duty cycle), a steady mirror at half bandwidth, and a distant
/// last-resort standby at a tenth. Compares the two static pins against
/// the adaptive permutation scheduler under both registration orders,
/// all over the identical static plan with a deterministic per-tuple CPU
/// model, and asserts that (a) every strategy produces the identical
/// (deduped) answer, (b) the adaptive scheduler beats the worst static
/// source choice on virtual completion time, and (c) the delivery-model
/// hedge gate declines at least one race the legacy stall-only rule
/// would have started (waking the remote standby while the steady mirror
/// is healthy).
pub fn mirror_failover_suite(cfg: &ExpConfig) -> String {
    let [(_, uniform), _] = datasets(cfg);
    let q = WorkloadQuery::Q3A.query();
    struct VirtRun {
        secs: f64,
        rows: Vec<String>,
        failovers: u64,
        stalls: u64,
        dupes: u64,
        declined: u64,
    }
    let run = |mut sources: Vec<Box<dyn Source>>| {
        let out = run_static(
            &q,
            &mut sources,
            OptimizerContext::no_statistics(),
            cfg.batch_size,
            CpuCostModel::PerTupleNs(200),
        )
        .expect("mirror run");
        let (mut failovers, mut stalls, mut dupes, mut declined) = (0u64, 0u64, 0u64, 0u64);
        for s in &sources {
            if let Some(fed) = s.as_any().and_then(|a| a.downcast_ref::<FederatedSource>()) {
                let r = fed.report();
                failovers += r.failovers;
                stalls += r.candidates.iter().map(|c| c.stalls).sum::<u64>();
                dupes += r.candidates.iter().map(|c| c.duplicates).sum::<u64>();
                declined += r.declined_hedges;
            }
        }
        VirtRun {
            secs: out.exec.virtual_us as f64 / 1e6,
            rows: canonicalize_approx(&out.rows),
            failovers,
            stalls,
            dupes,
            declined,
        }
    };

    let flaky = run(pinned_mirror_sources(
        &uniform,
        &q,
        cfg,
        MirrorKind::FastFlaky,
    ));
    let steady = run(pinned_mirror_sources(
        &uniform,
        &q,
        cfg,
        MirrorKind::SteadySlow,
    ));
    let order = [
        MirrorKind::FastFlaky,
        MirrorKind::SteadySlow,
        MirrorKind::RemoteBackup,
    ];
    let order_rev = [
        MirrorKind::SteadySlow,
        MirrorKind::FastFlaky,
        MirrorKind::RemoteBackup,
    ];
    let fed = run(federated_mirror_sources(&uniform, &q, cfg, &order));
    let fed_rev = run(federated_mirror_sources(&uniform, &q, cfg, &order_rev));
    let fed_again = run(federated_mirror_sources(&uniform, &q, cfg, &order));

    // Correctness: identical deduped answers across every source
    // permutation, and determinism under the per-tuple cost model.
    assert_eq!(flaky.rows, steady.rows, "static mirror answers disagree");
    assert_eq!(fed.rows, flaky.rows, "federated answer diverged");
    assert_eq!(fed_rev.rows, flaky.rows, "permutation changed the answer");
    assert_eq!(fed.secs, fed_again.secs, "federated run not deterministic");
    assert_eq!(fed.rows, fed_again.rows, "federated rows not deterministic");
    let worst = flaky.secs.max(steady.secs);
    assert!(
        fed.secs < worst && fed_rev.secs < worst,
        "adaptive ({:.3}s / {:.3}s) must beat the worst static pin ({worst:.3}s)",
        fed.secs,
        fed_rev.secs
    );
    assert!(
        fed.declined >= 1,
        "the cost gate must decline at least one race the stall-only rule would take \
         (declined={})",
        fed.declined
    );

    let mut t = TextTable::new(&[
        "strategy",
        "virtual-s",
        "rows",
        "failovers",
        "stalls",
        "deduped",
        "declined",
    ]);
    for (name, r) in [
        ("static flaky mirror", &flaky),
        ("static steady mirror", &steady),
        ("federated [flaky,steady,remote]", &fed),
        ("federated [steady,flaky,remote]", &fed_rev),
    ] {
        t.row(vec![
            name.into(),
            secs(r.secs),
            count(r.rows.len()),
            r.failovers.to_string(),
            r.stalls.to_string(),
            r.dupes.to_string(),
            r.declined.to_string(),
        ]);
    }
    format!(
        "{}\nadaptive vs worst static: {:.2}× faster (identical answers, deterministic); \
         cost gate declined {} hedges the stall-only rule would have raced\n",
        t.render(),
        worst / fed.secs.max(1e-9),
        fed.declined
    )
}

/// Federation report from either adapter (sequential or threaded).
fn fed_report_of(s: &dyn Source) -> Option<FederationReport> {
    let any = s.as_any()?;
    if let Some(fed) = any.downcast_ref::<FederatedSource>() {
        return Some(fed.report());
    }
    any.downcast_ref::<ConcurrentFederatedSource>()
        .map(|fed| fed.report())
}

/// Wall-clock variant of the mirror-failover scenario: the same flaky ×
/// steady mirror pair per relation, but the candidates race on real
/// producer threads (`federation::concurrent`) while an accelerated
/// [`WallClock`] plays the delivery schedules back in real time. Reports
/// *measured* wall seconds, and asserts that (a) the threaded hedged run
/// produces the identical deduped answer as the deterministic
/// virtual-clock run — the dual-clock equivalence — and (b) hedging wins
/// real latency against the worst static mirror pin.
pub fn mirror_failover_wall_suite(cfg: &ExpConfig) -> String {
    /// Timeline runs this much faster than real time; delivery schedules
    /// keep their shape, the race just plays back quicker.
    const ACCEL: f64 = 25.0;
    let [(_, uniform), _] = datasets(cfg);
    let q = WorkloadQuery::Q3A.query();

    let order = [
        MirrorKind::FastFlaky,
        MirrorKind::SteadySlow,
        MirrorKind::RemoteBackup,
    ];
    let order_rev = [
        MirrorKind::SteadySlow,
        MirrorKind::FastFlaky,
        MirrorKind::RemoteBackup,
    ];

    // The deterministic anchor: the virtual-clock federated run.
    let virtual_answer = {
        let mut sources = federated_mirror_sources(&uniform, &q, cfg, &order);
        let run = run_static(
            &q,
            &mut sources,
            OptimizerContext::no_statistics(),
            cfg.batch_size,
            CpuCostModel::PerTupleNs(200),
        )
        .expect("virtual mirror run");
        canonicalize_approx(&run.rows)
    };

    struct WallRun {
        real_s: f64,
        timeline_s: f64,
        rows: Vec<String>,
        failovers: u64,
        stalls: u64,
        dupes: u64,
        blocked: u64,
        declined: u64,
    }
    let run_wall = |mk: &dyn Fn(Arc<dyn Clock>) -> Vec<Box<dyn Source>>| -> WallRun {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(ACCEL));
        let mut sources = mk(clock.clone());
        let start = Instant::now();
        let out = run_static_with_driver(
            &q,
            &mut sources,
            OptimizerContext::no_statistics(),
            SimDriver::new(cfg.batch_size, CpuCostModel::Measured).with_clock(clock),
            None,
        )
        .expect("wall mirror run");
        let real_s = start.elapsed().as_secs_f64();
        let (mut failovers, mut stalls, mut dupes, mut blocked, mut declined) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for r in sources.iter().filter_map(|s| fed_report_of(s.as_ref())) {
            failovers += r.failovers;
            stalls += r.candidates.iter().map(|c| c.stalls).sum::<u64>();
            dupes += r.candidates.iter().map(|c| c.duplicates).sum::<u64>();
            blocked += r.candidates.iter().map(|c| c.blocked_sends).sum::<u64>();
            declined += r.declined_hedges;
        }
        WallRun {
            real_s,
            timeline_s: out.exec.virtual_us as f64 / 1e6,
            rows: canonicalize_approx(&out.rows),
            failovers,
            stalls,
            dupes,
            blocked,
            declined,
        }
    };

    eprintln!("[mirrors-wall] static flaky pin");
    let flaky = run_wall(&|clock| {
        // Pinned mirrors have no producer threads; only the driver waits
        // on the clock.
        let _ = clock;
        pinned_mirror_sources(&uniform, &q, cfg, MirrorKind::FastFlaky)
    });
    eprintln!("[mirrors-wall] static steady pin");
    let steady = run_wall(&|clock| {
        let _ = clock;
        pinned_mirror_sources(&uniform, &q, cfg, MirrorKind::SteadySlow)
    });
    eprintln!("[mirrors-wall] threaded federated [flaky,steady,remote]");
    let fed = run_wall(&|clock| concurrent_mirror_sources(&uniform, &q, cfg, &order, clock));
    eprintln!("[mirrors-wall] threaded federated [steady,flaky,remote]");
    let fed_rev =
        run_wall(&|clock| concurrent_mirror_sources(&uniform, &q, cfg, &order_rev, clock));

    // Render the diagnostic table *before* asserting, so a failed run
    // (e.g. a timing flake on a loaded machine) still shows its data.
    let mut t = TextTable::new(&[
        "strategy",
        "real-s",
        "timeline-s",
        "rows",
        "failovers",
        "stalls",
        "deduped",
        "blocked",
        "declined",
    ]);
    for (name, r) in [
        ("static flaky mirror (wall)", &flaky),
        ("static steady mirror (wall)", &steady),
        ("threaded federated [flaky,steady,remote]", &fed),
        ("threaded federated [steady,flaky,remote]", &fed_rev),
    ] {
        t.row(vec![
            name.into(),
            secs(r.real_s),
            secs(r.timeline_s),
            count(r.rows.len()),
            r.failovers.to_string(),
            r.stalls.to_string(),
            r.dupes.to_string(),
            r.blocked.to_string(),
            r.declined.to_string(),
        ]);
    }
    let rendered = t.render();

    // Dual-clock equivalence: whatever the race's interleaving, the
    // deduped answer is byte-identical to the deterministic virtual run.
    assert_eq!(
        flaky.rows, virtual_answer,
        "static flaky wall answer diverged\n{rendered}"
    );
    assert_eq!(
        steady.rows, virtual_answer,
        "static steady wall answer diverged\n{rendered}"
    );
    assert_eq!(
        fed.rows, virtual_answer,
        "threaded answer diverged from virtual\n{rendered}"
    );
    assert_eq!(
        fed_rev.rows, virtual_answer,
        "permutation changed the answer\n{rendered}"
    );
    let worst = flaky.real_s.max(steady.real_s);
    assert!(
        fed.real_s < worst && fed_rev.real_s < worst,
        "threaded hedging ({:.3}s / {:.3}s real) must beat the worst static pin \
         ({worst:.3}s real)\n{rendered}",
        fed.real_s,
        fed_rev.real_s,
    );
    assert!(
        fed.declined + fed_rev.declined >= 1,
        "the cost gate must decline at least one race the legacy stall-only rule would \
         have taken (waking the remote standby while the steady mirror races)\n{rendered}"
    );

    format!(
        "{rendered}\nthreaded hedging vs worst static pin: {:.2}× faster in real time \
         (×{ACCEL:.0} accelerated playback; answers byte-identical to the virtual-clock run); \
         cost gate declined {} races the stall-only rule would have started\n",
        worst / fed.real_s.max(1e-9),
        fed.declined + fed_rev.declined
    )
}

/// Threaded plan fragments (the §5 parallel-subplan configuration):
/// Q3A pinned to `(orders ⋈ lineitem) ⋈ customer`, with CUSTOMER served
/// by slow federated mirrors (delivery-bound) and ORDERS/LINEITEM local
/// (the CPU-heavy join subtree). The fragmentation pass — fed the
/// customer delivery rate *observed by a profiling run* — cuts the
/// `orders ⋈ lineitem` subtree into its own producer fragment, and the
/// suite compares the same fragmented plan executed sequentially vs
/// threaded over `exec::queue_pair` exchanges, both on an accelerated
/// wall clock.
///
/// Asserts: both wall runs (and each other) produce the byte-identical
/// canonicalized answer of the deterministic virtual-clock run; and, on
/// hosts with ≥ 2 CPUs, that the threaded run beats the sequential one
/// ≥ 1.1× in real time (the producer fragment's CPU overlaps the slow
/// federated deliveries on another core — on a single-core host there is
/// no parallelism to win, so only correctness is asserted).
pub fn fragments_wall_suite(cfg: &ExpConfig) -> String {
    use tukwila_core::lower_fragmented;
    use tukwila_datagen::TableId;
    use tukwila_exec::FragmentOptions;
    use tukwila_optimizer::{choose_cuts, FragmentationConfig, Optimizer};
    use tukwila_stats::SelectivityCatalog;

    /// Timeline plays back this much faster than real time.
    const ACCEL: f64 = 25.0;
    // The CPU-heavy subtree must be genuinely heavy relative to both the
    // customer delivery schedule and thread/sleep-chunk overheads, or
    // there is nothing for the producer fragment to overlap; floor the
    // scale factor.
    let cfg = ExpConfig {
        scale: cfg.scale.max(0.04),
        ..*cfg
    };
    let [(_, uniform), _] = datasets(&cfg);
    let q = WorkloadQuery::Q3A.query();
    let order = [
        TableId::Orders.rel_id(),
        TableId::Lineitem.rel_id(),
        TableId::Customer.rel_id(),
    ];

    // 1. The deterministic anchor doubles as the profiling run: the
    //    sequential federated adapter observes customer's delivery rate
    //    under the virtual clock.
    eprintln!("[fragments-wall] virtual anchor + rate profiling");
    let mut vsources = slow_customer_mirror_sources(&uniform, &q, &cfg, None);
    let vrun = tukwila_core::run_static_from(
        &q,
        &mut vsources,
        OptimizerContext::no_statistics(),
        cfg.batch_size,
        CpuCostModel::Zero,
        Some(&order),
    )
    .expect("virtual fragments run");
    let virtual_answer = canonicalize_approx(&vrun.rows);
    let customer_rate = vsources
        .iter()
        .find(|s| s.rel_id() == TableId::Customer.rel_id())
        .and_then(|s| s.observed_rate())
        .expect("federated customer profiles its delivery rate");

    // 2. Fragmentation from the observed source properties: the slow
    //    customer rate makes its sibling subtree worth its own fragment.
    let catalog = Arc::new(SelectivityCatalog::new());
    catalog.observe_source_rate(TableId::Customer.rel_id(), customer_rate);
    let ctx = OptimizerContext {
        catalog: Some(catalog),
        ..OptimizerContext::no_statistics()
    };
    let plan = Optimizer::new(ctx.clone())
        .plan_with_order(&q, &order)
        .expect("pinned Q3A plan");
    // On a single-core host the model's core budget correctly vetoes
    // every cut (no parallel win is possible); this suite still wants
    // the exchange to exist there so sequential/threaded/virtual answer
    // equivalence is exercised — pin the budget to 2 and leave the
    // speedup assertion gated on the real core count below.
    let frag_cfg = FragmentationConfig {
        cores: Some(2),
        ..Default::default()
    };
    let cuts = choose_cuts(&plan, &ctx, &frag_cfg);
    assert!(
        !cuts.is_empty(),
        "customer rate {customer_rate:.0} t/s must be slow enough to cut orders⋈lineitem"
    );

    struct WallRun {
        real_s: f64,
        timeline_s: f64,
        rows: Vec<String>,
        fragments: usize,
        max_queue_depth: u64,
        blocked: u64,
    }
    let run_wall = |threaded: bool| -> WallRun {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(ACCEL));
        let sources = slow_customer_mirror_sources(&uniform, &q, &cfg, Some(clock.clone()));
        let frag = lower_fragmented(&plan, &cuts, None, true).expect("fragmented lowering");
        let fragments = frag.plan.fragment_count();
        let driver = SimDriver::new(cfg.batch_size, CpuCostModel::Measured).with_clock(clock);
        // Exchange knobs sized for the accelerated clock: the poll tick
        // is authored in timeline µs, so at ×25 playback the default
        // 200µs tick would wake the consumer every 8 real µs.
        let opts = FragmentOptions {
            queue_capacity: 16,
            poll_tick_us: 10_000,
            ..Default::default()
        };
        let start = Instant::now();
        let (rows, report) = if threaded {
            driver.run_fragments_threaded(frag.plan, sources, &opts)
        } else {
            driver.run_fragments_sequential(frag.plan, sources)
        }
        .expect("wall fragments run");
        WallRun {
            real_s: start.elapsed().as_secs_f64(),
            timeline_s: report.virtual_us as f64 / 1e6,
            rows: canonicalize_approx(&rows),
            fragments,
            max_queue_depth: report.max_queue_depth,
            blocked: report.blocked_sends(),
        }
    };

    eprintln!("[fragments-wall] sequential fragmented plan (wall clock)");
    let sequential = run_wall(false);
    eprintln!("[fragments-wall] threaded fragmented plan (wall clock)");
    let threaded = run_wall(true);

    let mut t = TextTable::new(&[
        "strategy",
        "fragments",
        "real-s",
        "timeline-s",
        "rows",
        "max-q",
        "blocked",
    ]);
    for (name, r) in [
        ("sequential fragments (wall)", &sequential),
        ("threaded fragments (wall)", &threaded),
    ] {
        t.row(vec![
            name.into(),
            r.fragments.to_string(),
            secs(r.real_s),
            secs(r.timeline_s),
            count(r.rows.len()),
            r.max_queue_depth.to_string(),
            r.blocked.to_string(),
        ]);
    }
    let rendered = t.render();

    assert_eq!(
        sequential.rows, virtual_answer,
        "sequential wall answer diverged from the virtual-clock run\n{rendered}"
    );
    assert_eq!(
        threaded.rows, virtual_answer,
        "threaded answer diverged from the virtual-clock run\n{rendered}"
    );
    assert!(threaded.fragments >= 2, "an exchange must exist");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = sequential.real_s / threaded.real_s.max(1e-9);
    if cores >= 2 {
        assert!(
            speedup >= 1.1,
            "threaded fragments ({:.3}s real) must beat the sequential plan \
             ({:.3}s real) ≥1.1× on a {cores}-core host\n{rendered}",
            threaded.real_s,
            sequential.real_s,
        );
    }
    let note = if cores >= 2 {
        format!(
            "threaded fragments vs sequential: {speedup:.2}× faster in real time \
             (×{ACCEL:.0} accelerated playback; answers byte-identical to the \
             virtual-clock run)\n"
        )
    } else {
        format!(
            "speedup skipped (1 core): no parallel win can exist here, so none is asserted \
             ({speedup:.2}× observed); answers verified byte-identical to the virtual-clock \
             run. Re-run on ≥2 cores for the overlap measurement.\n"
        )
    };
    format!("{rendered}\n{note}")
}

/// `repro fragments-wall --sweep-cuts`: sweep the cut placements of the
/// pinned Q3A fragments scenario and report the delivery model's
/// *predicted* net win next to the *observed* wall-clock win for each
/// placement — a direct validation of `cut_net_win_us` against reality.
///
/// Placements are generated from the three pinned join orders of Q3A
/// (each yields one eligible producer subtree) plus the no-cut baseline.
/// Observed win = sequential wall time − threaded wall time for the same
/// fragmented plan (positive only where real parallelism exists; on a
/// single-core host the table reports the loss honestly). Every run's
/// answer must stay byte-identical to the virtual-clock anchor.
pub fn fragments_sweep_suite(cfg: &ExpConfig) -> String {
    use tukwila_core::lower_fragmented;
    use tukwila_datagen::TableId;
    use tukwila_exec::FragmentOptions;
    use tukwila_optimizer::{fragment::cut_net_win_us, FragmentationConfig, Optimizer, PhysKind};
    use tukwila_stats::SelectivityCatalog;

    const ACCEL: f64 = 25.0;
    let cfg = ExpConfig {
        scale: cfg.scale.max(0.04),
        ..*cfg
    };
    let [(_, uniform), _] = datasets(&cfg);
    let q = WorkloadQuery::Q3A.query();
    let (o, l, c) = (
        TableId::Orders.rel_id(),
        TableId::Lineitem.rel_id(),
        TableId::Customer.rel_id(),
    );

    // Profile customer's delivery rate once (virtual anchor), as
    // fragments_wall_suite does; the anchor's answer checks every run.
    eprintln!("[fragments-sweep] virtual anchor + rate profiling");
    let mut vsources = slow_customer_mirror_sources(&uniform, &q, &cfg, None);
    let vrun = tukwila_core::run_static_from(
        &q,
        &mut vsources,
        OptimizerContext::no_statistics(),
        cfg.batch_size,
        CpuCostModel::Zero,
        Some(&[o, l, c]),
    )
    .expect("virtual sweep anchor");
    let virtual_answer = canonicalize_approx(&vrun.rows);
    let customer_rate = vsources
        .iter()
        .find(|s| s.rel_id() == c)
        .and_then(|s| s.observed_rate())
        .expect("federated customer profiles its delivery rate");
    let catalog = Arc::new(SelectivityCatalog::new());
    catalog.observe_source_rate(c, customer_rate);
    let ctx = OptimizerContext {
        catalog: Some(catalog),
        ..OptimizerContext::no_statistics()
    };
    let frag_cfg = FragmentationConfig {
        cores: Some(2),
        ..Default::default()
    };

    let mut t = TextTable::new(&[
        "placement",
        "cut subtree",
        "predicted win ms",
        "model says",
        "seq real-s",
        "thr real-s",
        "observed win ms",
    ]);
    // Each pinned order puts a different subtree next to the slow
    // customer deliveries; "no cut" anchors the sweep.
    let placements: [(&str, [u32; 3]); 3] = [
        ("(orders⋈lineitem)⋈customer", [o, l, c]),
        ("(orders⋈customer)⋈lineitem", [o, c, l]),
        ("(customer⋈orders)⋈lineitem", [c, o, l]),
    ];
    for (name, order) in placements {
        let plan = Optimizer::new(ctx.clone())
            .plan_with_order(&q, &order)
            .expect("pinned sweep plan");
        // The single eligible producer subtree of a 3-relation left-deep
        // plan is the root's non-scan child.
        let PhysKind::Join { left, right, .. } = &plan.root.kind else {
            panic!("pinned plan must be a join");
        };
        let (cand, slow) = if left.join_count() >= 1 {
            (left, right)
        } else {
            (right, left)
        };
        let predicted_us = cut_net_win_us(cand, slow.est_wait_us, &ctx, &frag_cfg);
        let pays = predicted_us >= frag_cfg.min_net_win_us;
        let cuts = vec![cand.sig.clone()];

        let run_wall = |threaded: bool| -> (f64, Vec<String>) {
            let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(ACCEL));
            let sources = slow_customer_mirror_sources(&uniform, &q, &cfg, Some(clock.clone()));
            let frag = lower_fragmented(&plan, &cuts, None, true).expect("sweep lowering");
            let driver = SimDriver::new(cfg.batch_size, CpuCostModel::Measured).with_clock(clock);
            let opts = FragmentOptions {
                queue_capacity: 16,
                poll_tick_us: 10_000,
                ..Default::default()
            };
            let start = Instant::now();
            let (rows, _) = if threaded {
                driver.run_fragments_threaded(frag.plan, sources, &opts)
            } else {
                driver.run_fragments_sequential(frag.plan, sources)
            }
            .expect("sweep wall run");
            (start.elapsed().as_secs_f64(), canonicalize_approx(&rows))
        };
        eprintln!("[fragments-sweep] {name}: sequential");
        let (seq_s, seq_rows) = run_wall(false);
        eprintln!("[fragments-sweep] {name}: threaded");
        let (thr_s, thr_rows) = run_wall(true);
        assert_eq!(
            seq_rows, virtual_answer,
            "{name}: sequential answer diverged"
        );
        assert_eq!(thr_rows, virtual_answer, "{name}: threaded answer diverged");
        // Observed win in timeline ms (real seconds × acceleration).
        let observed_ms = (seq_s - thr_s) * ACCEL * 1e3;
        t.row(vec![
            name.into(),
            cand.describe(),
            format!("{:.1}", predicted_us / 1e3),
            if pays { "cut" } else { "skip" }.into(),
            secs(seq_s),
            secs(thr_s),
            format!("{observed_ms:.0}"),
        ]);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!(
        "{}\n{} (customer observed at {customer_rate:.0} t/s; predicted wins are timeline µs \
         from the shared DeliveryModel, observed wins real-time × {ACCEL:.0} accel)\n",
        t.render(),
        if cores >= 2 {
            "host has real parallelism: positive predicted wins should show positive observed wins"
        } else {
            "single-core host: observed wins are expected to be ≤ 0 (the model's core budget \
             would veto these cuts; they are forced here to measure the exchange overhead)"
        }
    )
}

/// The corrective-over-fragments scenario shared by `repro smoke` (its
/// virtual-clock golden) and `repro corrective-wall` (whose threaded runs
/// must reproduce it byte-for-byte): Q3A from the pinned bad plan over
/// the slow federated customer mirrors, with forced switches and
/// aggressive fragmentation so every run exercises a mid-stream plan
/// switch across exchanges.
fn corrective_fragments_cfg(
    batch_size: usize,
    clock: Option<Arc<dyn Clock>>,
    threaded: Option<bool>,
) -> CorrectiveConfig {
    use tukwila_datagen::TableId;
    CorrectiveConfig {
        batch_size,
        cpu: if clock.is_some() {
            CpuCostModel::Measured
        } else {
            CpuCostModel::Zero
        },
        poll_every_batches: 3,
        switch_threshold: 100.0,
        max_phases: 3,
        warmup_batches: 2,
        initial_order: Some(vec![
            TableId::Orders.rel_id(),
            TableId::Lineitem.rel_id(),
            TableId::Customer.rel_id(),
        ]),
        min_remaining_fraction: 0.0,
        clock,
        fragments: Some(tukwila_optimizer::FragmentationConfig::aggressive()),
        threaded_fragments: threaded,
        fragment_options: tukwila_exec::FragmentOptions {
            queue_capacity: 16,
            poll_tick_us: 10_000,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The deterministic virtual-clock answer of the corrective-fragments
/// scenario (the `answers-corrective.txt` golden, and the anchor every
/// `corrective-wall` run is compared against), over a caller-provided
/// dataset at the caller's (already scale-floored) config — both callers
/// have the dataset in hand, so it is generated exactly once per suite.
/// Returns the canonicalized rows and the phase count (the forced switch
/// must actually happen).
fn corrective_virtual_answer(uniform: &Dataset, fcfg: &ExpConfig) -> (Vec<String>, usize) {
    let q = WorkloadQuery::Q3A.query();
    let mut sources = slow_customer_mirror_sources(uniform, &q, fcfg, None);
    let exec = CorrectiveExec::new(q, corrective_fragments_cfg(fcfg.batch_size, None, None));
    let report = exec.run(&mut sources).expect("virtual corrective anchor");
    (canonicalize_approx(&report.rows), report.phase_count())
}

/// Diff a canonicalized answer against its committed golden under
/// `results/answers-<name>.txt`, appending a line to `out`. A missing or
/// unreadable golden FAILS (it is written locally so the diff can land in
/// review, but CI must not pass on an uncommitted golden).
fn diff_golden(name: &str, answer: &[String], out: &mut String) -> bool {
    let path = std::path::Path::new("results").join(format!("answers-{name}.txt"));
    let rendered = answer.join("\n") + "\n";
    match std::fs::read_to_string(&path) {
        Ok(golden) if golden == rendered => {
            out.push_str(&format!(
                "{name}: OK ({} rows match golden)\n",
                answer.len()
            ));
            true
        }
        Ok(golden) => {
            let ng = golden.lines().count();
            out.push_str(&format!(
                "{name}: MISMATCH — {} rows computed vs {ng} golden rows ({})\n",
                answer.len(),
                path.display()
            ));
            false
        }
        Err(e) => {
            let _ = std::fs::create_dir_all("results");
            let _ = std::fs::write(&path, &rendered);
            out.push_str(&format!(
                "{name}: FAIL — golden unreadable ({e}); wrote {} ({} rows), review and \
                 commit it\n",
                path.display(),
                answer.len()
            ));
            false
        }
    }
}

/// `repro corrective-wall`: threaded corrective execution over the slow
/// federated customer mirrors — the quiesce protocol under benchmark
/// conditions. Runs the corrective executor three ways over identical
/// data: the deterministic virtual-clock anchor (also the committed
/// golden), sequential fragments on a wall clock, and threaded producer
/// fragments on a wall clock (forced mid-stream switch ⇒ producers
/// quiesced, drained, sealed, respawned). Asserts every answer is
/// byte-identical and that a switch actually happened; reports the
/// real-time win of threading, or "skipped (1 core)" on hosts where no
/// parallel win can exist.
///
/// Returns the report and whether the golden matched (the CI gate bit).
pub fn corrective_wall_suite(cfg: &ExpConfig) -> (String, bool) {
    /// Timeline plays back this much faster than real time.
    const ACCEL: f64 = 25.0;
    let fcfg = ExpConfig {
        scale: cfg.scale.max(0.04),
        ..*cfg
    };
    let [(_, uniform), _] = datasets(&fcfg);
    let q = WorkloadQuery::Q3A.query();

    eprintln!("[corrective-wall] virtual anchor (forced switch, sequential fragments)");
    let (virtual_answer, virtual_phases) = corrective_virtual_answer(&uniform, &fcfg);
    assert!(
        virtual_phases > 1,
        "the forced switch must happen in the virtual anchor"
    );

    struct WallCorr {
        real_s: f64,
        timeline_s: f64,
        phases: usize,
        max_fragments: usize,
        rows: Vec<String>,
        calibrated: Option<f64>,
        max_queue_depth: u64,
        blocked: u64,
    }
    let run_wall = |threaded: bool| -> WallCorr {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(ACCEL));
        let mut sources = slow_customer_mirror_sources(&uniform, &q, &fcfg, Some(clock.clone()));
        let exec = CorrectiveExec::new(
            q.clone(),
            corrective_fragments_cfg(fcfg.batch_size, Some(clock), Some(threaded)),
        );
        let start = Instant::now();
        let report = exec.run(&mut sources).expect("corrective wall run");
        WallCorr {
            real_s: start.elapsed().as_secs_f64(),
            timeline_s: report.exec.virtual_us as f64 / 1e6,
            phases: report.phase_count(),
            max_fragments: report.phases.iter().map(|p| p.fragments).max().unwrap_or(1),
            rows: canonicalize_approx(&report.rows),
            calibrated: report.calibrated_unit_us,
            max_queue_depth: report.exec.max_queue_depth,
            blocked: report.exec.blocked_sends(),
        }
    };
    eprintln!("[corrective-wall] sequential corrective (wall clock)");
    let sequential = run_wall(false);
    eprintln!("[corrective-wall] threaded corrective (wall clock, quiesce on switch)");
    let threaded = run_wall(true);

    let mut t = TextTable::new(&[
        "strategy",
        "phases",
        "max fragments",
        "real-s",
        "timeline-s",
        "rows",
        "max-q",
        "blocked",
    ]);
    for (name, r) in [
        ("sequential corrective (wall)", &sequential),
        ("threaded corrective (wall)", &threaded),
    ] {
        t.row(vec![
            name.into(),
            r.phases.to_string(),
            r.max_fragments.to_string(),
            secs(r.real_s),
            secs(r.timeline_s),
            count(r.rows.len()),
            r.max_queue_depth.to_string(),
            r.blocked.to_string(),
        ]);
    }
    let rendered = t.render();

    assert_eq!(
        sequential.rows, virtual_answer,
        "sequential wall corrective answer diverged from the virtual anchor\n{rendered}"
    );
    assert_eq!(
        threaded.rows, virtual_answer,
        "threaded corrective answer diverged from the virtual anchor\n{rendered}"
    );
    assert!(
        threaded.phases > 1,
        "the forced switch (and with it the quiesce protocol) must run\n{rendered}"
    );
    assert!(
        threaded.max_fragments > 1,
        "threaded phases must actually run producer fragments\n{rendered}"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = sequential.real_s / threaded.real_s.max(1e-9);
    let note = if cores >= 2 {
        format!(
            "threaded corrective vs sequential: {speedup:.2}× in real time across a forced \
             mid-stream switch (×{ACCEL:.0} accelerated playback; answers byte-identical to \
             the virtual-clock anchor; calibrated unit_us {})\n",
            threaded
                .calibrated
                .map_or("n/a".into(), |u| format!("{u:.3}")),
        )
    } else {
        format!(
            "speedup skipped (1 core): no parallel win can exist here, so none is asserted \
             ({speedup:.2}× observed); answers verified byte-identical to the virtual-clock \
             anchor.\n"
        )
    };

    let mut out = format!("{rendered}\n{note}\n");
    let ok = diff_golden("corrective", &virtual_answer, &mut out);
    (out, ok)
}

/// `repro smoke`: quick answer-regression gate for CI. Runs the mirrors,
/// fragments, and corrective scenarios in pure virtual-clock mode
/// (deterministic, seconds of CPU) and diffs their canonicalized answers
/// against the goldens committed under `results/answers-*.txt`. A
/// cost-model change that alters *answers* — not just timing — fails
/// this; a missing golden is (re)created so the diff lands in review.
///
/// Returns the report and whether every scenario matched its golden.
pub fn smoke_suite(cfg: &ExpConfig) -> (String, bool) {
    use tukwila_datagen::TableId;

    let [(_, uniform), _] = datasets(cfg);
    let q = WorkloadQuery::Q3A.query();

    // Scenario 1: federated mirrors (virtual clock), both registration
    // orders must agree with each other before touching the golden.
    eprintln!("[smoke] mirrors (virtual clock)");
    let run_fed = |order: &[MirrorKind]| {
        let mut sources = federated_mirror_sources(&uniform, &q, cfg, order);
        let out = run_static(
            &q,
            &mut sources,
            OptimizerContext::no_statistics(),
            cfg.batch_size,
            CpuCostModel::PerTupleNs(200),
        )
        .expect("smoke mirrors run");
        canonicalize_approx(&out.rows)
    };
    let mirrors = run_fed(&[
        MirrorKind::FastFlaky,
        MirrorKind::SteadySlow,
        MirrorKind::RemoteBackup,
    ]);
    let mirrors_rev = run_fed(&[
        MirrorKind::SteadySlow,
        MirrorKind::FastFlaky,
        MirrorKind::RemoteBackup,
    ]);
    assert_eq!(
        mirrors, mirrors_rev,
        "smoke: mirror registration order changed the answer"
    );

    // Scenario 2: the fragments workload (slow federated customer) run
    // statically under the virtual clock — the anchor every wall-clock
    // fragments run is compared against.
    eprintln!("[smoke] fragments (virtual clock)");
    let fcfg = ExpConfig {
        scale: cfg.scale.max(0.04),
        ..*cfg
    };
    let [(_, funiform), _] = datasets(&fcfg);
    let mut fsources = slow_customer_mirror_sources(&funiform, &q, &fcfg, None);
    let frun = tukwila_core::run_static_from(
        &q,
        &mut fsources,
        OptimizerContext::no_statistics(),
        fcfg.batch_size,
        CpuCostModel::Zero,
        Some(&[
            TableId::Orders.rel_id(),
            TableId::Lineitem.rel_id(),
            TableId::Customer.rel_id(),
        ]),
    )
    .expect("smoke fragments run");
    let fragments = canonicalize_approx(&frun.rows);

    // Scenario 3: corrective execution with a forced mid-stream switch
    // over fragmented phase plans (virtual clock) — the anchor the
    // threaded `corrective-wall` runs must reproduce byte-for-byte.
    eprintln!("[smoke] corrective (virtual clock, forced switch)");
    let (corrective, corrective_phases) = corrective_virtual_answer(&funiform, &fcfg);
    assert!(
        corrective_phases > 1,
        "smoke: the corrective scenario's forced switch must happen"
    );

    let mut out = String::new();
    let mut ok = true;
    for (name, answer) in [
        ("mirrors", &mirrors),
        ("fragments", &fragments),
        ("corrective", &corrective),
    ] {
        ok &= diff_golden(name, answer, &mut out);
    }
    (out, ok)
}

/// The trace-enabled virtual-clock mirrors run shared by `repro mirrors
/// --trace` and the smoke trace gate: the Q3A mirror-failover scenario
/// with the adaptivity journal attached to both the federation schedulers
/// (hedge decisions, activations, completion counters) and the engine
/// driver (drive spans, tuple/batch counters). Returns the canonicalized
/// answer; the journal accumulates into the caller's `trace`.
fn traced_mirrors_run(cfg: &ExpConfig, trace: &TraceSink) -> Vec<String> {
    let [(_, uniform), _] = datasets(cfg);
    let q = WorkloadQuery::Q3A.query();
    let order = [
        MirrorKind::FastFlaky,
        MirrorKind::SteadySlow,
        MirrorKind::RemoteBackup,
    ];
    let mut sources = federated_mirror_sources_traced(&uniform, &q, cfg, &order, trace.clone());
    let out = run_static_with_driver(
        &q,
        &mut sources,
        OptimizerContext::no_statistics(),
        SimDriver::new(cfg.batch_size, CpuCostModel::PerTupleNs(200)).with_trace(trace.clone()),
        None,
    )
    .expect("traced mirrors run");
    canonicalize_approx(&out.rows)
}

/// The trace-enabled virtual-clock corrective-fragments run (forced
/// mid-stream switch): journals the corrective monitor's switch/hold
/// decisions with observed-vs-estimated provenance, cost-unit
/// calibrations, per-cut net-win decisions, and the query/phase span
/// hierarchy. Returns the canonicalized answer and the phase count.
fn traced_corrective_run(
    fcfg: &ExpConfig,
    uniform: &Dataset,
    trace: &TraceSink,
) -> (Vec<String>, usize) {
    let q = WorkloadQuery::Q3A.query();
    let mut sources = slow_customer_mirror_sources_traced(uniform, &q, fcfg, None, trace.clone());
    let mut ccfg = corrective_fragments_cfg(fcfg.batch_size, None, None);
    ccfg.trace = trace.clone();
    let exec = CorrectiveExec::new(q, ccfg);
    let report = exec.run(&mut sources).expect("traced corrective run");
    (canonicalize_approx(&report.rows), report.phase_count())
}

/// Render a journal's rollup plus the per-relation hedge-decision
/// sequences (timing-free signatures, emission order).
fn render_trace_rollup(header: &str, records: &[tukwila_stats::TraceRecord]) -> String {
    let summary = QuerySummary::from_records(records);
    let mut out = format!("{header}\n");
    out.push_str(&summary.render());
    let sigs = hedge_signatures(records);
    if !sigs.is_empty() {
        out.push_str("  hedge decisions (per relation, emission order):\n");
        for list in sigs.values() {
            for s in list {
                out.push_str(&format!("    {s}\n"));
            }
        }
    }
    out
}

/// `repro mirrors --trace`: the mirror-failover scenario with the
/// adaptivity journal on. Asserts the provenance contract — every fired
/// hedge decision carries its candidate scores (the RaceDecision
/// win/waste each standby was priced at) and a chosen standby — and that
/// tracing did not perturb the answer relative to the untraced run.
/// Returns the human rollup and the JSONL export
/// (`results/trace-mirrors.jsonl`).
pub fn mirrors_trace_suite(cfg: &ExpConfig) -> (String, String) {
    eprintln!("[mirrors --trace] federated mirrors (virtual clock, journal on)");
    let clock = Arc::new(VirtualClock::new());
    let trace = TraceSink::unbounded(clock);
    let answer = traced_mirrors_run(cfg, &trace);

    // Tracing must be pure observation: the untraced run of the identical
    // scenario produces the identical deduped answer.
    let untraced = {
        let [(_, uniform), _] = datasets(cfg);
        let q = WorkloadQuery::Q3A.query();
        let order = [
            MirrorKind::FastFlaky,
            MirrorKind::SteadySlow,
            MirrorKind::RemoteBackup,
        ];
        let mut sources = federated_mirror_sources(&uniform, &q, cfg, &order);
        let out = run_static(
            &q,
            &mut sources,
            OptimizerContext::no_statistics(),
            cfg.batch_size,
            CpuCostModel::PerTupleNs(200),
        )
        .expect("untraced mirrors run");
        canonicalize_approx(&out.rows)
    };
    assert_eq!(
        answer, untraced,
        "enabling the trace journal changed the answer"
    );

    let records = trace.snapshot();
    for rec in &records {
        if let TraceEvent::HedgeDecision {
            fired: true,
            chosen,
            scores,
            ..
        } = &rec.event
        {
            assert!(
                chosen.is_some() && !scores.is_empty(),
                "a fired hedge decision must journal its winner and candidate scores"
            );
        }
    }
    let summary = QuerySummary::from_records(&records);
    assert!(
        summary.hedges_fired >= 1,
        "the mirror scenario must hedge at least once (fired={})",
        summary.hedges_fired
    );
    assert!(
        summary.hedges_declined >= 1,
        "the cost gate must decline at least one race (declined={})",
        summary.hedges_declined
    );

    let out = render_trace_rollup(
        &format!(
            "adaptivity trace — federated mirrors (virtual clock, {} answer rows, \
             {} journal records):",
            answer.len(),
            records.len()
        ),
        &records,
    );
    (out, trace.export_jsonl())
}

/// `repro corrective-wall --trace`: the *threaded* corrective run with
/// the journal on — the one place the full span hierarchy appears at
/// once: query → phase → fragment plus the quiesce protocol's park /
/// drain / seal / respawn sub-spans around the forced switch, with the
/// switch decision's observed-vs-estimated provenance. Returns the human
/// rollup and the JSONL export (`results/trace-corrective.jsonl`).
pub fn corrective_trace_suite(cfg: &ExpConfig) -> (String, String) {
    const ACCEL: f64 = 25.0;
    let fcfg = ExpConfig {
        scale: cfg.scale.max(0.04),
        ..*cfg
    };
    let [(_, uniform), _] = datasets(&fcfg);
    let q = WorkloadQuery::Q3A.query();
    eprintln!("[corrective-wall --trace] threaded corrective (wall clock, journal on)");
    let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(ACCEL));
    let trace = TraceSink::unbounded(clock.clone());
    let mut sources = slow_customer_mirror_sources_traced(
        &uniform,
        &q,
        &fcfg,
        Some(clock.clone()),
        trace.clone(),
    );
    let mut ccfg = corrective_fragments_cfg(fcfg.batch_size, Some(clock), Some(true));
    ccfg.trace = trace.clone();
    let exec = CorrectiveExec::new(q, ccfg);
    let report = exec.run(&mut sources).expect("traced corrective wall run");
    assert!(
        report.phase_count() > 1,
        "the forced switch must happen in the traced run"
    );

    let records = trace.snapshot();
    let summary = QuerySummary::from_records(&records);
    assert!(
        summary.switches >= 1,
        "the journal must witness the plan switch"
    );
    assert!(
        summary.spans.get("quiesce").copied().unwrap_or(0) >= 1,
        "a threaded switch must journal its quiesce span"
    );
    let out = render_trace_rollup(
        &format!(
            "adaptivity trace — threaded corrective (wall clock ×{ACCEL:.0}, {} phases, \
             {} journal records):",
            report.phase_count(),
            records.len()
        ),
        &records,
    );
    (out, trace.export_jsonl())
}

/// Diff the decision-count rollup against the committed golden
/// `results/trace-summary.txt` — same contract as [`diff_golden`]: a
/// missing golden is written locally (so the diff lands in review) but
/// FAILS the gate.
fn diff_trace_summary(counts: &str, out: &mut String) -> bool {
    diff_trace_summary_named("trace-summary.txt", counts, out)
}

/// [`diff_trace_summary`] against an arbitrary golden file under
/// `results/` (the serve smoke has its own decision-count golden).
fn diff_trace_summary_named(file: &str, counts: &str, out: &mut String) -> bool {
    let path = std::path::Path::new("results").join(file);
    let stem = file.strip_suffix(".txt").unwrap_or(file);
    match std::fs::read_to_string(&path) {
        Ok(golden) if golden == counts => {
            out.push_str(&format!("{stem}: OK (decision counts match golden)\n"));
            true
        }
        Ok(golden) => {
            out.push_str(&format!(
                "{stem}: MISMATCH ({})\n--- golden ---\n{golden}--- computed ---\n{counts}",
                path.display()
            ));
            false
        }
        Err(e) => {
            let _ = std::fs::create_dir_all("results");
            let _ = std::fs::write(&path, counts);
            out.push_str(&format!(
                "{stem}: FAIL — golden unreadable ({e}); wrote {}, review and commit it\n",
                path.display()
            ));
            false
        }
    }
}

/// `repro smoke --trace`: one journal shared across the deterministic
/// virtual-clock mirrors and corrective scenarios, rolled up into the
/// decision-count summary and diffed against the committed golden
/// `results/trace-summary.txt`. Both scenarios are seed-pinned pure
/// virtual-clock runs, so every decision count — hedges fired/declined,
/// switches, holds, calibrations, cuts — is deterministic; a change here
/// means the *adaptive decisions themselves* changed, not just timing.
/// Also re-diffs both answers against their `answers-*.txt` goldens
/// (tracing must not perturb results). Returns (report, jsonl, ok).
pub fn smoke_trace_suite(cfg: &ExpConfig) -> (String, String, bool) {
    let clock = Arc::new(VirtualClock::new());
    let trace = TraceSink::unbounded(clock);
    let mut out = String::new();

    eprintln!("[smoke --trace] mirrors (virtual clock, journal on)");
    let mirrors_answer = traced_mirrors_run(cfg, &trace);
    let mut ok = diff_golden("mirrors", &mirrors_answer, &mut out);

    eprintln!("[smoke --trace] corrective (virtual clock, journal on)");
    let fcfg = ExpConfig {
        scale: cfg.scale.max(0.04),
        ..*cfg
    };
    let [(_, funiform), _] = datasets(&fcfg);
    let (corrective_answer, phases) = traced_corrective_run(&fcfg, &funiform, &trace);
    assert!(
        phases > 1,
        "smoke --trace: the corrective forced switch must happen"
    );
    ok &= diff_golden("corrective", &corrective_answer, &mut out);

    let records = trace.snapshot();
    let summary = QuerySummary::from_records(&records);
    out.push('\n');
    out.push_str(&render_trace_rollup(
        "combined adaptivity rollup (mirrors + corrective, virtual clock):",
        &records,
    ));
    ok &= diff_trace_summary(&summary.decision_counts(), &mut out);
    (out, trace.export_jsonl(), ok)
}

/// `repro serve`: the multi-query serving front end over the shared
/// learning catalog — the headline serving bench.
///
/// N queries arrive one wave at a time over the same degraded catalog
/// (every relation: dead primary + slow + fast declared standbys, see
/// [`serve_degraded_catalog`]). Three runs over identical specs:
///
/// * **shared / virtual** — one [`Server`], one learning store: query 1
///   pays the full cold stall patience (`min_stall_us`), every later
///   query hedges at the warm floor because the store knows the primary
///   is dead. The deterministic anchor: per-query answers are diffed
///   against the `answers-serve-q*.txt` goldens and the fleet's
///   decision counts against `trace-summary-serve.txt`.
/// * **cold / virtual** — a fresh server (fresh learning store) per
///   query: the no-serving baseline. Shared must beat it on total
///   makespan — that *is* the value of the shared catalog.
/// * **shared / threaded** — the same waves on real threads against an
///   accelerated wall clock; per-query answers must match the virtual
///   anchor byte-for-byte (canonicalized).
///
/// The true-parallel claim (a concurrent wave beating sequential waves
/// in real time) additionally runs when the host has >1 core, and is
/// honestly reported as "skipped (1 core)" otherwise.
///
/// Returns the report and whether every golden matched (the CI gate).
pub fn serve_suite(cfg: &ExpConfig) -> (String, bool) {
    const QUERIES: usize = 4;
    let [(_, uniform), _] = datasets(cfg);
    let uniform = Arc::new(uniform);
    let q = WorkloadQuery::Q3A.query();

    let server_config = || ServerConfig {
        federation: FederationConfig {
            // A cold query waits out 2 virtual seconds before its first
            // hedge; a warm one (primary learned dead) only 100ms.
            min_stall_us: 2_000_000,
            stall_sigma: 8.0,
            warm_stall_us: Some(100_000),
            ..FederationConfig::default()
        },
        batch_size: cfg.batch_size,
        ..ServerConfig::default()
    };
    let waves = |names: &[String]| -> Vec<Vec<QuerySpec>> {
        names
            .iter()
            .map(|name| {
                let d = uniform.clone();
                let tables_q = q.clone();
                vec![QuerySpec::new(name.clone(), q.clone(), move |fed| {
                    serve_degraded_catalog(&d, &tables_q, fed)
                })]
            })
            .collect()
    };
    let names: Vec<String> = (1..=QUERIES).map(|i| format!("q{i}")).collect();

    eprintln!("[serve] shared learning catalog, {QUERIES} waves (virtual clock)");
    let shared_server = Server::new(server_config());
    let shared = shared_server
        .serve(&waves(&names), ServeMode::Virtual)
        .expect("shared virtual serve");

    eprintln!("[serve] cold catalog per query (virtual clock)");
    let mut cold_makespan_us: u64 = 0;
    let mut cold_rows: Vec<Vec<String>> = Vec::new();
    for name in &names {
        let cold = Server::new(server_config())
            .serve(&waves(std::slice::from_ref(name)), ServeMode::Virtual)
            .expect("cold virtual serve");
        cold_makespan_us += cold.makespan_us;
        cold_rows.push(cold.outcomes[0].rows.clone());
    }

    eprintln!("[serve] shared learning catalog, {QUERIES} waves (threaded, wall clock)");
    let threaded = Server::new(server_config())
        .serve(&waves(&names), ServeMode::Threaded)
        .expect("shared threaded serve");

    // Correctness: every mode, every query — one identical answer.
    // Learning repriced *when* the fleet hedged, never *what* it read.
    for (i, o) in shared.outcomes.iter().enumerate() {
        assert_eq!(
            o.rows, cold_rows[i],
            "shared vs cold answer diverged ({})",
            o.name
        );
        assert_eq!(
            o.rows, threaded.outcomes[i].rows,
            "virtual vs threaded answer diverged ({})",
            o.name
        );
        assert!(
            o.summary.hedges_fired >= 1,
            "query {} never hedged off the dead primary",
            o.name
        );
    }
    // The serving claim, asserted on the deterministic virtual clock:
    // the warm queries hedge ~20× sooner, so the shared fleet's total
    // makespan beats cold-catalog-per-query.
    assert!(
        shared.makespan_us < cold_makespan_us,
        "shared-catalog serving ({} us) must beat cold-per-query ({cold_makespan_us} us)",
        shared.makespan_us
    );
    assert!(
        shared.outcomes[0].latency_us > shared.outcomes[QUERIES - 1].latency_us,
        "the warm queries must be faster than the cold first query"
    );
    assert!(
        shared_server.learning().len() >= 3,
        "the learning store must have published profiles"
    );

    // Goldens: per-query answers + the fleet's decision counts.
    let mut out = String::new();
    let mut ok = true;
    for o in &shared.outcomes {
        ok &= diff_golden(&format!("serve-{}", o.name), &o.rows, &mut out);
    }
    ok &= diff_trace_summary_named(
        "trace-summary-serve.txt",
        &shared.fleet_summary().decision_counts(),
        &mut out,
    );

    out.push('\n');
    out.push_str(&shared.render());
    out.push_str(&format!(
        "cold-per-query total makespan: {} us — shared catalog is {:.2}× faster\n",
        cold_makespan_us,
        cold_makespan_us as f64 / shared.makespan_us.max(1) as f64
    ));
    out.push_str(&threaded.render());

    // True-parallel claim: one admission wave of all N queries at once,
    // racing on threads. Only meaningful with real cores to grant.
    let budget = shared_server.arbiter().budget();
    if budget > 1 {
        eprintln!("[serve] concurrent wave of {QUERIES} (threaded, wall clock)");
        let start = Instant::now();
        let concurrent = Server::new(server_config())
            .serve(
                &[waves(&names).into_iter().flatten().collect()],
                ServeMode::Threaded,
            )
            .expect("concurrent threaded serve");
        let real_s = start.elapsed().as_secs_f64();
        for (i, o) in concurrent.outcomes.iter().enumerate() {
            assert_eq!(
                o.rows, shared.outcomes[i].rows,
                "concurrent-wave answer diverged ({})",
                o.name
            );
        }
        out.push_str(&format!(
            "concurrent wave of {QUERIES}: makespan {} us ({real_s:.2} real s) across {budget} cores\n",
            concurrent.makespan_us
        ));
    } else {
        out.push_str(&format!(
            "concurrent wave of {QUERIES}: skipped (1 core) — no parallel win can exist here\n"
        ));
    }
    (out, ok)
}

/// Ablations over the design choices DESIGN.md calls out: the value of
/// stitch-up's registry reuse, and the sensitivity of corrective query
/// processing to the polling interval (the paper's 1-second choice).
pub fn ablation_suite(cfg: &ExpConfig) -> String {
    use tukwila_datagen::queries;
    let [(_, d), _] = datasets(cfg);
    let q = queries::q10a();
    let order = WorkloadQuery::Q10A.paper_nostats_order();

    let mut out = String::new();

    // 1. Stitch-up reuse on/off (forced multi-phase so stitch-up matters).
    let mut table = TextTable::new(&[
        "stitch-up reuse",
        "time s",
        "stitch s",
        "recomputed pure",
        "reused tuples",
    ]);
    for reuse in [true, false] {
        let mut times = Vec::new();
        let mut last = None;
        for _ in 0..cfg.runs {
            let mut c = corrective_cfg(cfg, None, order.clone());
            c.switch_threshold = 100.0; // force a switch
                                        // Two phases: the stitch tree is the (large) final phase's
                                        // tree, so its registered intermediates are exactly what
                                        // reuse saves.
            c.max_phases = 2;
            c.stitch_reuse = reuse;
            let exec = CorrectiveExec::new(q.clone(), c);
            let mut s = local_sources(&d, &q);
            let report = exec.run(&mut s).expect("ablation run");
            times.push(report.exec.cpu_us as f64 / 1e6);
            last = Some(report);
        }
        let report = last.expect("at least one run");
        table.row(vec![
            if reuse { "on (paper §3.4.2)" } else { "off" }.into(),
            fmt_ci(&times),
            secs(report.stitch_us as f64 / 1e6),
            count(report.stitch.recomputed_pure),
            count(report.reuse.reused_tuples),
        ]);
    }
    out.push_str("Stitch-up registry reuse (Q10A, forced 2 phases):\n");
    out.push_str(&table.render());

    // 2. Polling-interval sweep (paper §4.1: "how often to make
    //    decisions"; they found 1s polling "stable, consistent, and
    //    effective").
    let mut table = TextTable::new(&["poll every (batches)", "time s", "phases"]);
    for poll in [2u64, 6, 12, 24, 48] {
        let mut times = Vec::new();
        let mut phases = 0;
        for _ in 0..cfg.runs {
            let mut c = corrective_cfg(cfg, None, order.clone());
            c.poll_every_batches = poll;
            let exec = CorrectiveExec::new(q.clone(), c);
            let mut s = local_sources(&d, &q);
            let report = exec.run(&mut s).expect("poll sweep run");
            times.push(report.exec.cpu_us as f64 / 1e6);
            phases = report.phase_count();
        }
        table.row(vec![poll.to_string(), fmt_ci(&times), phases.to_string()]);
    }
    out.push_str("\nPolling interval sweep (Q10A from the paper's bad plan):\n");
    out.push_str(&table.render());
    out
}

/// `repro ops-bench`: row vs columnar kernel throughput for the six
/// vectorized paths (filter, hash join, federation dedup, hash
/// aggregation, sort, exchange shipping). Every kernel processes identical
/// data through the row-at-a-time code and the columnar code and reports
/// tuples/sec, so the numbers are a direct measure of what the columnar
/// representation buys.
///
/// The exchange kernel is measured end to end — encode at the producer
/// boundary, move through the queue, consume at the head operator on the
/// other side — with the transpose and queue legs also reported
/// separately. (An earlier version timed only the send half, which
/// charged the columnar path its transpose while crediting none of the
/// consumer-side win.)
///
/// The returned flag is the CI gate: columnar throughput must be at least
/// the row throughput on every kernel. The row filter baseline is
/// measured twice back to back first; if the two measurements disagree by
/// more than 1.5× the host is too noisy for a throughput assertion and
/// the gate passes with an explicit skip message instead of a fabricated
/// verdict.
pub fn ops_bench_suite(cfg: &ExpConfig) -> (String, String, bool) {
    use std::hint::black_box;
    use tukwila_exec::agg::{AggSpec, GroupSpec, HashAggOp};
    use tukwila_exec::join::batch::{hash_join_columnar, hash_join_slices, BatchJoinStats};
    use tukwila_exec::{queue_pair, DataBatch, IncOp};
    use tukwila_federation::KeyDedup;
    use tukwila_relation::agg::AggFunc;
    use tukwila_relation::column::{eval_predicate, sort_permutation, ColumnarBatch};
    use tukwila_relation::{cmp_tuples, CmpOp, DataType, Expr, Field, Schema, SortKey};

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0b5);
    // Default scale 0.01 → 400K tuples; clamp so --scale sweeps stay sane.
    let n = ((cfg.scale / 0.01 * 400_000.0).round() as usize).clamp(40_000, 4_000_000);
    let reps = cfg.runs.max(3);
    // Publisher-style site names: dedup keys in a federation are
    // typically (site, record-id) pairs, and the site component is a
    // low-cardinality, not-short string.
    let cats: Vec<String> = (0..16)
        .map(|i| format!("content-mirror-{i:02}.integration.example.org"))
        .collect();
    let mk = |i: usize, rng: &mut StdRng| {
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int(rng.gen_range(0..1000)),
            Value::str(&cats[rng.gen_range(0..cats.len())]),
        ])
    };
    let tuples: Vec<Tuple> = (0..n).map(|i| mk(i, &mut rng)).collect();
    let batches: Vec<Vec<Tuple>> = tuples.chunks(cfg.batch_size).map(|c| c.to_vec()).collect();
    let cbatches: Vec<ColumnarBatch> = batches
        .iter()
        .map(|b| ColumnarBatch::from_tuples(b))
        .collect();

    /// Best-of-`reps` wall time for one kernel pass.
    fn best<F: FnMut() -> usize>(reps: usize, mut f: F) -> (f64, usize) {
        let mut t = f64::INFINITY;
        let mut processed = 0;
        for _ in 0..reps {
            let start = Instant::now();
            processed = f();
            t = t.min(start.elapsed().as_secs_f64());
        }
        (t, processed)
    }
    let tps = |t: f64, n: usize| n as f64 / t.max(1e-9);
    let fmt_tps = |v: f64| {
        if v >= 1e6 {
            format!("{:.1}M", v / 1e6)
        } else {
            format!("{:.0}K", v / 1e3)
        }
    };

    // -- filter: predicate evaluation over every tuple (~30% selective) --
    let pred = Expr::cmp(Expr::Col(1), CmpOp::Lt, Expr::Lit(Value::Int(300)));
    let row_filter = || {
        let mut kept = 0usize;
        for t in &tuples {
            if pred.matches(t).expect("bench predicate is type-clean") {
                kept += 1;
            }
        }
        black_box(kept);
        tuples.len()
    };
    let (t_row_f1, _) = best(reps, row_filter);
    let (t_row_f2, _) = best(reps, row_filter);
    let t_row_f = t_row_f1.min(t_row_f2);
    let noise = t_row_f1.max(t_row_f2) / t_row_f1.min(t_row_f2).max(1e-9);
    let (t_col_f, _) = best(reps, || {
        let mut kept = 0usize;
        for b in &cbatches {
            let mask = eval_predicate(&pred, b).expect("bench predicate vectorizes");
            kept += mask.count_ones();
        }
        black_box(kept);
        n
    });

    // -- hash join: unique int keys, half the probe side matches --
    let jn = (n / 4).max(1);
    let left = &tuples[..jn];
    let right: Vec<Tuple> = (0..jn)
        .map(|i| Tuple::new(vec![Value::Int((i * 2) as i64), Value::Int(i as i64)]))
        .collect();
    let cleft = ColumnarBatch::from_tuples(left);
    let cright = ColumnarBatch::from_tuples(&right);
    let (t_row_j, _) = best(reps, || {
        let mut out = Vec::new();
        let mut stats = BatchJoinStats::default();
        hash_join_slices(left, &right, 0, 0, &mut out, &mut stats).expect("row join");
        black_box(out.len());
        jn * 2
    });
    let (t_col_j, _) = best(reps, || {
        let mut stats = BatchJoinStats::default();
        let out = hash_join_columnar(&cleft, &cright, 0, 0, &mut stats).expect("columnar join");
        black_box(out.selected_rows());
        jn * 2
    });

    // -- dedup: steady-state probing. One mirror seeds the seen-set
    //    (untimed — inserting a fresh key costs the same allocations on
    //    both paths), then three fully redundant mirrors deliver the same
    //    relation and every row is a probe: hash the composite
    //    (site, id) key, find the bucket, verify equality. That is the
    //    kernel the federated seen-set runs for the rest of the query.
    let dn = n / 4;
    let key_cols = vec![2usize, 0];
    let seed_feed: Vec<Vec<Tuple>> = tuples[..dn]
        .chunks(cfg.batch_size)
        .map(|c| c.to_vec())
        .collect();
    let names = ["mirror-b", "mirror-c", "mirror-d"];
    let feed: Vec<(usize, &str, Vec<Tuple>)> = names
        .iter()
        .enumerate()
        .flat_map(|(i, nm)| {
            tuples[..dn]
                .chunks(cfg.batch_size)
                .map(move |c| (i + 1, *nm, c.to_vec()))
        })
        .collect();
    let cfeed: Vec<(usize, &str, ColumnarBatch)> = feed
        .iter()
        .map(|(c, nm, b)| (*c, *nm, ColumnarBatch::from_tuples(b)))
        .collect();
    let mut d_row = KeyDedup::new(1, key_cols.clone());
    let mut d_col = KeyDedup::new(1, key_cols.clone());
    let mut hash_buf = Vec::new();
    for b in &seed_feed {
        d_row.filter(0, "mirror-a", b.clone());
        d_col.filter_columnar(0, "mirror-a", &ColumnarBatch::from_tuples(b), &mut hash_buf);
    }
    let (t_row_d, _) = best(reps, || {
        let mut fresh = 0usize;
        for (cand, nm, b) in &feed {
            fresh += d_row.filter(*cand, nm, b.clone()).len();
        }
        black_box(fresh);
        3 * dn
    });
    let (t_col_d, _) = best(reps, || {
        let mut fresh = 0usize;
        for (cand, nm, b) in &cfeed {
            fresh += d_col.filter_columnar(*cand, nm, b, &mut hash_buf).len();
        }
        black_box(fresh);
        3 * dn
    });

    let schema = Schema::new(vec![
        Field::new("t.id", DataType::Int),
        Field::new("t.val", DataType::Int),
        Field::new("t.cat", DataType::Str),
    ]);

    // -- agg: hash aggregation grouped on (site, val) — ~16K groups --
    let agg_spec = || {
        GroupSpec::new(
            vec![2, 1],
            vec![
                AggSpec {
                    func: AggFunc::Sum,
                    col: 1,
                },
                AggSpec {
                    func: AggFunc::Min,
                    col: 0,
                },
            ],
        )
    };
    let (t_row_a, _) = best(reps, || {
        let mut op = HashAggOp::new(agg_spec(), &schema);
        let mut sink = Vec::new();
        for b in &batches {
            op.push(0, b, &mut sink).expect("row agg");
        }
        op.finish(&mut sink).expect("row agg finish");
        black_box(sink.len());
        n
    });
    let (t_col_a, _) = best(reps, || {
        let mut op = HashAggOp::new(agg_spec(), &schema);
        let mut sink = Vec::new();
        for b in &cbatches {
            op.push_columns(0, b, &mut sink).expect("columnar agg");
        }
        op.finish(&mut sink).expect("columnar agg finish");
        black_box(sink.len());
        n
    });

    // -- sort: order the whole feed by (val asc, id desc); the columnar
    //    path sorts a key permutation and gathers the payload once --
    let sort_keys = [SortKey::asc(1), SortKey::desc(0)];
    let call = ColumnarBatch::from_tuples(&tuples);
    let (t_row_s, _) = best(reps, || {
        let mut v = tuples.clone();
        v.sort_by(|a, b| cmp_tuples(&sort_keys, a, b));
        black_box(v.len());
        n
    });
    let (t_col_s, _) = best(reps, || {
        let perm = sort_permutation(&call, &sort_keys);
        let sorted = call.gather(&perm);
        black_box(sorted.num_rows());
        n
    });

    // -- exchange: end-to-end shipping — encode at the producer boundary
    //    (the staged encode-once protocol producers actually run), move
    //    through the queue, and consume at the head operator on the far
    //    side (a hash aggregation, the kind of operator a root fragment
    //    feeds). The transpose only pays for itself through the
    //    consumer-side win, which is exactly the claim being gated. --
    let run_exchange = |columnar: bool| {
        best(reps, || {
            let (mut w, r) = queue_pair(schema.clone(), batches.len() + 1);
            w.set_columnar(columnar);
            for b in &batches {
                let enc = w.encode(b.clone());
                let refused = w.try_send_data(enc).expect("bench queue never closes");
                assert!(refused.is_none(), "bench queue is sized for the whole feed");
            }
            let mut op = HashAggOp::new(agg_spec(), &schema);
            let mut sink = Vec::new();
            for _ in 0..batches.len() {
                match r.recv_data().expect("all batches were sent") {
                    DataBatch::Rows(rows) => {
                        op.push(0, &rows, &mut sink).expect("row consume");
                    }
                    DataBatch::Columns(c) => {
                        op.push_columns(0, &c, &mut sink).expect("columnar consume");
                    }
                }
            }
            op.finish(&mut sink).expect("consume finish");
            black_box(sink.len());
            n
        })
    };
    let (t_row_x, _) = run_exchange(false);
    let (t_col_x, _) = run_exchange(true);
    // Breakdown legs for the columnar exchange: the one-time row→column
    // transpose at the boundary vs the queue move alone. (The consume leg
    // is the filter kernel above.)
    let (t_x_transpose, _) = best(reps, || {
        for b in &batches {
            black_box(ColumnarBatch::from_tuples(b).num_rows());
        }
        n
    });
    let (t_x_queue, _) = best(reps, || {
        let (mut w, r) = queue_pair(schema.clone(), batches.len() + 1);
        w.set_columnar(true);
        for c in &cbatches {
            let refused = w
                .try_send_data(DataBatch::Columns(c.clone()))
                .expect("bench queue never closes");
            assert!(refused.is_none(), "bench queue is sized for the whole feed");
        }
        let mut got = 0usize;
        for _ in 0..cbatches.len() {
            if let DataBatch::Columns(c) = r.recv_data().expect("all batches were sent") {
                got += c.selected_rows();
            }
        }
        black_box(got);
        n
    });

    let kernels = [
        ("filter", tps(t_row_f, n), tps(t_col_f, n)),
        ("hash-join", tps(t_row_j, jn * 2), tps(t_col_j, jn * 2)),
        ("dedup", tps(t_row_d, 3 * dn), tps(t_col_d, 3 * dn)),
        ("agg", tps(t_row_a, n), tps(t_col_a, n)),
        ("sort", tps(t_row_s, n), tps(t_col_s, n)),
        ("exchange", tps(t_row_x, n), tps(t_col_x, n)),
    ];

    let mut out = String::new();
    out.push_str(&format!(
        "workload: {} tuples (int id, int val, 16-way str cat), batch {}, best of {} reps\n\n",
        count(n),
        cfg.batch_size,
        reps
    ));
    let mut table = TextTable::new(&["kernel", "row tuples/s", "columnar tuples/s", "speedup"]);
    for (name, row_tps, col_tps) in kernels {
        table.row(vec![
            name.to_string(),
            fmt_tps(row_tps),
            fmt_tps(col_tps),
            format!("{:.2}x", col_tps / row_tps.max(1e-9)),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nexchange legs (columnar): transpose {} tuples/s, queue move {} tuples/s; \
         the consume leg is the agg kernel above\n",
        fmt_tps(tps(t_x_transpose, n)),
        fmt_tps(tps(t_x_queue, n)),
    ));

    let noisy = noise > 1.5;
    let mut ok = true;
    if noisy {
        out.push_str(&format!(
            "\nassertion SKIPPED: the row filter baseline varied {noise:.2}x across \
             back-to-back runs — this host is too noisy for a throughput verdict, so the \
             columnar >= row gate was not evaluated (not a pass, not a failure).\n"
        ));
    } else {
        for (name, row_tps, col_tps) in kernels {
            if col_tps >= row_tps {
                out.push_str(&format!(
                    "\nassertion OK: columnar {name} >= row {name} ({:.2}x)\n",
                    col_tps / row_tps
                ));
            } else {
                ok = false;
                out.push_str(&format!(
                    "\nassertion FAILED: columnar {name} is slower than the row path \
                     ({:.2}x) — the vectorized kernel regressed\n",
                    col_tps / row_tps
                ));
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"ops\",\n");
    json.push_str(&format!(
        "  \"tuples\": {n},\n  \"batch\": {},\n  \"reps\": {reps},\n",
        cfg.batch_size
    ));
    json.push_str("  \"kernels\": {\n");
    for (i, (name, row_tps, col_tps)) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{\"row_tps\": {row_tps:.0}, \"columnar_tps\": {col_tps:.0}, \
             \"speedup\": {:.3}}}{}\n",
            col_tps / row_tps.max(1e-9),
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"exchange_legs\": {{\"transpose_tps\": {:.0}, \"queue_tps\": {:.0}}},\n",
        tps(t_x_transpose, n),
        tps(t_x_queue, n)
    ));
    json.push_str(&format!(
        "  \"gate\": {{\"noise_ratio\": {noise:.3}, \"checked\": {}, \"passed\": {}}}\n}}\n",
        !noisy, ok
    ));
    (out, json, ok)
}
