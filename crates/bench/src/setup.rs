//! Experiment configuration, datasets, sources, and workload wiring.

use std::collections::HashMap;
use std::sync::Arc;

use tukwila_datagen::{queries, Dataset, DatasetConfig, TableId};
use tukwila_federation::{DeclaredRate, FederatedCatalog, FederationConfig};
use tukwila_optimizer::LogicalQuery;
use tukwila_source::{DelayModel, DelayedSource, MemSource, Source};
use tukwila_stats::{Clock, TraceSink};

/// Global experiment knobs (CLI-settable).
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// TPC-H scale factor; the paper uses 0.1, our default budget-friendly
    /// scale is 0.01 (the Q5 given-cardinalities trap plan is
    /// intentionally quadratic — see EXPERIMENTS.md — so large scales need
    /// large memory).
    pub scale: f64,
    /// Repetitions per measurement (paper: minimum 4).
    pub runs: usize,
    pub batch_size: usize,
    /// Wireless model bandwidth (bytes/sec) for Figure 3 / Table 2.
    pub wireless_bps: f64,
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 0.01,
            runs: 3,
            batch_size: 1024,
            wireless_bps: 1.5e6,
            seed: 7,
        }
    }
}

/// The four queries of the paper's Figure 2/3/6 workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadQuery {
    Q3A,
    Q10,
    Q10A,
    Q5,
}

impl WorkloadQuery {
    pub fn all() -> [WorkloadQuery; 4] {
        [
            WorkloadQuery::Q3A,
            WorkloadQuery::Q10,
            WorkloadQuery::Q10A,
            WorkloadQuery::Q5,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            WorkloadQuery::Q3A => "3A",
            WorkloadQuery::Q10 => "10",
            WorkloadQuery::Q10A => "10A",
            WorkloadQuery::Q5 => "5",
        }
    }

    pub fn query(self) -> LogicalQuery {
        match self {
            WorkloadQuery::Q3A => queries::q3a(),
            WorkloadQuery::Q10 => queries::q10(),
            WorkloadQuery::Q10A => queries::q10a(),
            WorkloadQuery::Q5 => queries::q5(),
        }
    }

    /// The phase-0 plan the paper's no-statistics optimizer landed on.
    ///
    /// Our reimplemented estimator does not reproduce the original
    /// optimizer's specific mis-estimates, so the no-statistics experiments
    /// pin phase 0 to the orderings the paper reports: for 3A/10/10A "the
    /// optimizer generally picks an ordering that yields an expensive
    /// intermediate result" (ORDERS ⋈ LINEITEM first); for Q5 the
    /// no-statistics behaviour needs no pinning: our enumerator's
    /// tie-breaking walks into the CUSTOMER ⋈ SUPPLIER nationkey trap on
    /// its own — the same "very large subresult" the paper describes for
    /// Q5 (there triggered in the given-cardinalities mode; here in the
    /// no-statistics mode). Either way, the experiment's subject — a
    /// running plan with a blowing-up intermediate, and corrective
    /// processing escaping it — is preserved. See EXPERIMENTS.md.
    pub fn paper_nostats_order(self) -> Option<Vec<u32>> {
        let o = TableId::Orders.rel_id();
        let l = TableId::Lineitem.rel_id();
        let c = TableId::Customer.rel_id();
        let n = TableId::Nation.rel_id();
        let s = TableId::Supplier.rel_id();
        let r = TableId::Region.rel_id();
        match self {
            WorkloadQuery::Q3A => Some(vec![o, l, c]),
            WorkloadQuery::Q10 | WorkloadQuery::Q10A => Some(vec![o, l, c, n]),
            WorkloadQuery::Q5 => {
                let _ = (s, r);
                None
            }
        }
    }
}

/// Generate the paper's two datasets at the configured scale.
pub fn datasets(cfg: &ExpConfig) -> [(String, Dataset); 2] {
    [
        (
            "uniform".into(),
            Dataset::generate(DatasetConfig {
                scale: cfg.scale,
                zipf_z: None,
                seed: cfg.seed,
            }),
        ),
        (
            "skewed".into(),
            Dataset::generate(DatasetConfig {
                scale: cfg.scale,
                zipf_z: Some(0.5),
                seed: cfg.seed,
            }),
        ),
    ]
}

/// Local (in-memory) sources for a query.
pub fn local_sources(d: &Dataset, q: &LogicalQuery) -> Vec<Box<dyn Source>> {
    queries::tables_of(q)
        .into_iter()
        .map(|t| {
            Box::new(MemSource::new(
                t.rel_id(),
                t.name(),
                Dataset::schema(t),
                d.table(t).to_vec(),
            )) as Box<dyn Source>
        })
        .collect()
}

/// Bursty-wireless sources for a query (DESIGN.md substitution S3).
pub fn wireless_sources(d: &Dataset, q: &LogicalQuery, cfg: &ExpConfig) -> Vec<Box<dyn Source>> {
    let model = DelayModel::Wireless {
        bytes_per_sec: cfg.wireless_bps,
        burst_ms: 40.0,
        gap_ms: 60.0,
        seed: cfg.seed,
    };
    queries::tables_of(q)
        .into_iter()
        .map(|t| {
            Box::new(DelayedSource::new(
                t.rel_id(),
                t.name(),
                Dataset::schema(t),
                d.table(t).to_vec(),
                &model,
            )) as Box<dyn Source>
        })
        .collect()
}

/// Which mirror a pinned (non-adaptive) run reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorKind {
    /// Fast in bursts, long outages (802.11b-style wireless at 4× the
    /// configured bandwidth, ~10% duty cycle).
    FastFlaky,
    /// Steady bandwidth at half the configured rate.
    SteadySlow,
    /// A distant last-resort standby at a fraction of the steady rate.
    /// Registered third behind the federated adapters: the legacy
    /// stall-only rule would race it on every later flaky outage, the
    /// delivery-model gate declines it while the steady mirror is healthy
    /// (a from-scratch remote must re-deliver everything already
    /// delivered at a pathetic rate).
    RemoteBackup,
}

fn mirror_model(kind: MirrorKind, cfg: &ExpConfig, rel: u32) -> DelayModel {
    match kind {
        MirrorKind::FastFlaky => DelayModel::Wireless {
            bytes_per_sec: cfg.wireless_bps * 4.0,
            burst_ms: 30.0,
            gap_ms: 300.0,
            seed: cfg.seed ^ (rel as u64) << 8,
        },
        MirrorKind::SteadySlow => DelayModel::Bandwidth {
            bytes_per_sec: cfg.wireless_bps * 0.5,
            initial_latency_us: 2_000,
        },
        MirrorKind::RemoteBackup => DelayModel::Bandwidth {
            bytes_per_sec: cfg.wireless_bps * 0.1,
            initial_latency_us: 50_000,
        },
    }
}

fn mirror(d: &Dataset, t: TableId, kind: MirrorKind, cfg: &ExpConfig) -> Box<dyn Source> {
    let suffix = match kind {
        MirrorKind::FastFlaky => "flaky",
        MirrorKind::SteadySlow => "steady",
        MirrorKind::RemoteBackup => "remote",
    };
    Box::new(DelayedSource::new(
        t.rel_id(),
        format!("{}-{suffix}", t.name()),
        Dataset::schema(t),
        d.table(t).to_vec(),
        &mirror_model(kind, cfg, t.rel_id()),
    ))
}

/// Every relation pinned to a single mirror kind (the static baseline of
/// the mirror-failover experiment).
pub fn pinned_mirror_sources(
    d: &Dataset,
    q: &LogicalQuery,
    cfg: &ExpConfig,
    kind: MirrorKind,
) -> Vec<Box<dyn Source>> {
    queries::tables_of(q)
        .into_iter()
        .map(|t| mirror(d, t, kind, cfg))
        .collect()
}

/// The mirror catalog shared by the federated/concurrent builders, with
/// the scheduler's decision journal attached (disabled sinks cost one
/// branch per event).
fn mirror_catalog(
    d: &Dataset,
    q: &LogicalQuery,
    cfg: &ExpConfig,
    order: &[MirrorKind],
    trace: TraceSink,
) -> FederatedCatalog {
    let mut catalog = FederatedCatalog::new(FederationConfig {
        trace,
        ..FederationConfig::default()
    });
    for t in queries::tables_of(q) {
        for &kind in order {
            catalog
                .register(t.key_cols(), mirror(d, t, kind, cfg))
                .expect("uniform mirrors");
        }
    }
    catalog
}

/// Every relation served by both mirrors behind the federation layer's
/// online permutation scheduler. `order` controls registration order (the
/// initial permutation) so permutation-invariance can be benched.
pub fn federated_mirror_sources(
    d: &Dataset,
    q: &LogicalQuery,
    cfg: &ExpConfig,
    order: &[MirrorKind],
) -> Vec<Box<dyn Source>> {
    federated_mirror_sources_traced(d, q, cfg, order, TraceSink::disabled())
}

/// [`federated_mirror_sources`] with an adaptivity-trace journal: every
/// hedge-gate evaluation and standby activation the schedulers make lands
/// in `trace` with its decision provenance.
pub fn federated_mirror_sources_traced(
    d: &Dataset,
    q: &LogicalQuery,
    cfg: &ExpConfig,
    order: &[MirrorKind],
    trace: TraceSink,
) -> Vec<Box<dyn Source>> {
    mirror_catalog(d, q, cfg, order, trace)
        .into_sources()
        .expect("valid catalog")
}

/// [`federated_mirror_sources`], but racing the mirrors on real producer
/// threads against the shared wall `clock` (the same instance the driver
/// of the run must use).
pub fn concurrent_mirror_sources(
    d: &Dataset,
    q: &LogicalQuery,
    cfg: &ExpConfig,
    order: &[MirrorKind],
    clock: Arc<dyn Clock>,
) -> Vec<Box<dyn Source>> {
    concurrent_mirror_sources_traced(d, q, cfg, order, clock, TraceSink::disabled())
}

/// [`concurrent_mirror_sources`] with an adaptivity-trace journal (see
/// [`federated_mirror_sources_traced`]).
pub fn concurrent_mirror_sources_traced(
    d: &Dataset,
    q: &LogicalQuery,
    cfg: &ExpConfig,
    order: &[MirrorKind],
    clock: Arc<dyn Clock>,
    trace: TraceSink,
) -> Vec<Box<dyn Source>> {
    mirror_catalog(d, q, cfg, order, trace)
        .into_concurrent_sources(clock)
        .expect("valid catalog")
}

/// Sources for the fragments scenario: every relation local and
/// in-memory except CUSTOMER, which is served by two federated mirrors
/// on slow links (a delivery-bound relation). With `clock: None` the
/// mirrors go behind the sequential `FederatedSource` (virtual-clock
/// runs); with a wall clock they race on real producer threads.
pub fn slow_customer_mirror_sources(
    d: &Dataset,
    q: &LogicalQuery,
    cfg: &ExpConfig,
    clock: Option<Arc<dyn Clock>>,
) -> Vec<Box<dyn Source>> {
    slow_customer_mirror_sources_traced(d, q, cfg, clock, TraceSink::disabled())
}

/// [`slow_customer_mirror_sources`] with an adaptivity-trace journal on
/// the customer mirrors' scheduler.
pub fn slow_customer_mirror_sources_traced(
    d: &Dataset,
    q: &LogicalQuery,
    cfg: &ExpConfig,
    clock: Option<Arc<dyn Clock>>,
    trace: TraceSink,
) -> Vec<Box<dyn Source>> {
    let customer = TableId::Customer;
    let mut catalog = FederatedCatalog::new(FederationConfig {
        trace,
        ..FederationConfig::default()
    });
    for (i, frac) in [0.2, 0.16].into_iter().enumerate() {
        catalog
            .register(
                customer.key_cols(),
                Box::new(DelayedSource::new(
                    customer.rel_id(),
                    format!("customer-slow{i}"),
                    Dataset::schema(customer),
                    d.table(customer).to_vec(),
                    &DelayModel::Bandwidth {
                        bytes_per_sec: cfg.wireless_bps * frac,
                        initial_latency_us: 2_000,
                    },
                )),
            )
            .expect("uniform mirrors");
    }
    let mut sources = match clock {
        None => catalog.into_sources().expect("valid catalog"),
        Some(clock) => catalog
            .into_concurrent_sources(clock)
            .expect("valid catalog"),
    };
    for t in queries::tables_of(q) {
        if t != customer {
            sources.push(Box::new(MemSource::new(
                t.rel_id(),
                t.name(),
                Dataset::schema(t),
                d.table(t).to_vec(),
            )));
        }
    }
    sources
}

/// Catalog builder for the serving scenario: every relation of `q` is
/// served by a *dead* primary (connected, never delivers — the worst
/// case for per-query cold-start patience), a slow declared standby,
/// and a fast declared standby. A cold query must wait out the full
/// `min_stall_us` before its first hedge fires; a server whose learning
/// store knows the primary is dead hedges at the `warm_stall_us` floor
/// instead. The declared standby rates make the gate's choice (the fast
/// standby) identical whether or not learning is present, so serving
/// changes *when* the fleet hedges, never *what* it answers.
///
/// Takes the [`FederationConfig`] as a parameter (rather than building
/// it) because in serving mode the [`tukwila_serve::Server`] owns the
/// config — it injects the learning store, fair core share, and trace
/// journal at admission.
pub fn serve_degraded_catalog(
    d: &Dataset,
    q: &LogicalQuery,
    fed: FederationConfig,
) -> tukwila_relation::Result<FederatedCatalog> {
    let dead = DelayModel::Bandwidth {
        bytes_per_sec: 1e-3,
        initial_latency_us: u32::MAX as u64,
    };
    let slow = DelayModel::Bandwidth {
        bytes_per_sec: 50_000.0,
        initial_latency_us: 2_000,
    };
    let fast = DelayModel::Bandwidth {
        bytes_per_sec: 200_000.0,
        initial_latency_us: 1_000,
    };
    let mut catalog = FederatedCatalog::new(fed);
    for t in queries::tables_of(q) {
        // Connect-on-demand mirrors: each link's delivery clock starts
        // at first poll, so *when* a hedge wakes the fast standby moves
        // the query's completion time — the serving win under test.
        let src = |suffix: &str, model: &DelayModel| {
            Box::new(
                DelayedSource::new(
                    t.rel_id(),
                    format!("{}-{suffix}", t.name()),
                    Dataset::schema(t),
                    d.table(t).to_vec(),
                    model,
                )
                .anchored(),
            ) as Box<dyn Source>
        };
        catalog.register(t.key_cols(), src("dead", &dead))?;
        catalog.register(
            t.key_cols(),
            Box::new(DeclaredRate::new(src("slow", &slow), 50.0)),
        )?;
        catalog.register(
            t.key_cols(),
            Box::new(DeclaredRate::new(src("fast", &fast), 100_000.0)),
        )?;
    }
    Ok(catalog)
}

/// True per-relation cardinalities ("Given cardinalities" mode).
pub fn true_cards(d: &Dataset, q: &LogicalQuery) -> HashMap<u32, u64> {
    queries::tables_of(q)
        .into_iter()
        .map(|t| (t.rel_id(), d.table(t).len() as u64))
        .collect()
}

/// Mean and half-width of the 95% confidence interval.
pub fn mean_ci(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    // t-value for small samples ≈ 2.78 (df=4) .. 4.3 (df=2); use 2.78 as a
    // serviceable constant for the 3-5 run regime.
    let t = 2.78;
    (mean, t * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_queries_resolve() {
        for w in WorkloadQuery::all() {
            w.query().validate().unwrap();
        }
        assert!(WorkloadQuery::Q3A.paper_nostats_order().is_some());
        assert!(WorkloadQuery::Q5.paper_nostats_order().is_none());
    }

    #[test]
    fn mean_ci_behaves() {
        let (m, ci) = mean_ci(&[1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(ci, 0.0);
        let (m2, ci2) = mean_ci(&[1.0, 3.0]);
        assert_eq!(m2, 2.0);
        assert!(ci2 > 0.0);
        assert_eq!(mean_ci(&[]), (0.0, 0.0));
    }

    #[test]
    fn sources_cover_query_tables() {
        let cfg = ExpConfig {
            scale: 0.001,
            ..Default::default()
        };
        let [(_, d), _] = datasets(&cfg);
        let q = WorkloadQuery::Q10.query();
        assert_eq!(local_sources(&d, &q).len(), 4);
        assert_eq!(true_cards(&d, &q).len(), 4);
    }
}
