//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale SF] [--runs N] [--batch N] [--bps BYTES_PER_SEC] <cmd>
//!
//!   fig2     Figure 2  (static vs corrective vs plan partitioning, local)
//!   table1   Table 1   (phases / stitch-up / reuse breakdown, local)
//!   fig3     Figure 3  (same comparison over the bursty wireless model)
//!   table2   Table 2   (phase breakdown, wireless)
//!   fig5     Figure 5  (pipelined hash join vs complementary joins)
//!   table3   Table 3   (hash/merge/stitch processing distribution)
//!   fig6     Figure 6  (pre-aggregation strategies)
//!   sec45    §4.5      (join-size predictability + histogram overhead)
//!   ablation stitch-up reuse on/off; polling-interval sweep
//!   mirrors  federated mirror failover (online source-permutation scheduling)
//!   mirrors-wall  the same mirrors racing on real threads (wall clock)
//!   fragments-wall  threaded plan fragments vs the sequential plan (wall clock)
//!                   (--sweep-cuts additionally sweeps cut placements and reports
//!                    model-predicted vs observed win per placement)
//!   corrective-wall threaded corrective execution with a forced mid-stream switch
//!                   (the quiesce protocol) over slow federated mirrors; asserts
//!                   byte-identical answers vs the virtual clock + its golden
//!   serve    multi-query serving: N queries over one shared learning catalog
//!            (virtual anchor + cold-per-query baseline + threaded wall run);
//!            diffs answers-serve-q*.txt and trace-summary-serve.txt goldens
//!   smoke    virtual-clock answer regression vs results/answers-*.txt (CI gate)
//!   ops-bench row vs columnar kernel throughput (filter / hash-join / dedup /
//!            exchange, tuples/sec); writes results/ops-bench.txt and the
//!            machine-readable BENCH_ops.json, exits 1 if a vectorized kernel
//!            falls below the row path on a quiet host
//!   all      everything above
//! ```
//!
//! `--trace` turns on the adaptivity journal for the scenarios that
//! support it: `mirrors` additionally prints the decision rollup and
//! writes `results/trace-mirrors.jsonl`, `corrective-wall` journals the
//! threaded quiesce protocol into `results/trace-corrective.jsonl`, and
//! `smoke` diffs the combined decision-count rollup against the
//! `results/trace-summary.txt` golden (exit 1 on mismatch) next to
//! `results/trace-smoke.jsonl`.
//!
//! Results are printed and mirrored into `results/` next to the manifest.

use std::io::Write;

use tukwila_bench::experiments;
use tukwila_bench::ExpConfig;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale SF] [--runs N] [--batch N] [--bps B] [--sweep-cuts] [--trace] \
         <fig2|table1|fig3|table2|fig5|table3|fig6|sec45|ablation|mirrors|mirrors-wall|\
         fragments-wall|corrective-wall|serve|smoke|ops-bench|all>"
    );
    std::process::exit(2);
}

fn save(name: &str, content: &str) {
    save_as(&format!("{name}.txt"), content);
}

fn save_as(file: &str, content: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(file);
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(content.as_bytes());
        }
    }
}

fn main() {
    const KNOWN: [&str; 17] = [
        "fig2",
        "table1",
        "fig3",
        "table2",
        "fig5",
        "table3",
        "fig6",
        "sec45",
        "ablation",
        "mirrors",
        "mirrors-wall",
        "fragments-wall",
        "corrective-wall",
        "serve",
        "smoke",
        "ops-bench",
        "all",
    ];
    let mut cfg = ExpConfig::default();
    let mut cmds: Vec<String> = Vec::new();
    let mut sweep_cuts = false;
    let mut trace = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sweep-cuts" => sweep_cuts = true,
            "--trace" => trace = true,
            "--scale" => {
                cfg.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--runs" => {
                cfg.runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--batch" => {
                cfg.batch_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--bps" => {
                cfg.wireless_bps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            other if KNOWN.contains(&other) => cmds.push(other.to_string()),
            _ => usage(),
        }
    }
    if cmds.is_empty() {
        usage();
    }

    println!(
        "# tukwila repro — scale factor {}, {} runs, batch {}\n",
        cfg.scale, cfg.runs, cfg.batch_size
    );

    let all = cmds.iter().any(|c| c == "all");
    let want = |x: &str| all || cmds.iter().any(|c| c == x);

    if want("fig2") || want("table1") {
        println!("== Figure 2 / Table 1: corrective query processing, local sources ==");
        println!("   (running times in seconds; lower is better)\n");
        let (fig, tab) = experiments::corrective_suite(&cfg, false);
        if want("fig2") {
            println!("Figure 2:\n{fig}");
            save("fig2", &fig);
        }
        if want("table1") {
            println!("Table 1:\n{tab}");
            save("table1", &tab);
        }
    }
    if want("fig3") || want("table2") {
        println!("== Figure 3 / Table 2: corrective query processing, bursty wireless ==");
        println!("   (virtual completion times in seconds)\n");
        let (fig, tab) = experiments::corrective_suite(&cfg, true);
        if want("fig3") {
            println!("Figure 3:\n{fig}");
            save("fig3", &fig);
        }
        if want("table2") {
            println!("Table 2:\n{tab}");
            save("table2", &tab);
        }
    }
    if want("fig5") || want("table3") {
        println!("== Figure 5 / Table 3: complementary join pairs, LINEITEM ⋈ ORDERS ==\n");
        let (fig, tab) = experiments::complementary_suite(&cfg);
        if want("fig5") {
            println!("Figure 5:\n{fig}");
            save("fig5", &fig);
        }
        if want("table3") {
            println!("Table 3:\n{tab}");
            save("table3", &tab);
        }
    }
    if want("fig6") {
        println!("== Figure 6: pre-aggregation strategies ==\n");
        let fig = experiments::preagg_suite(&cfg);
        println!("Figure 6:\n{fig}");
        save("fig6", &fig);
    }
    if want("ablation") {
        println!("== Ablations: stitch-up reuse, polling interval ==\n");
        let out = experiments::ablation_suite(&cfg);
        println!("{out}");
        save("ablation", &out);
    }
    if want("sec45") {
        println!("== §4.5: evidence that selectivity is predictable ==\n");
        let out = experiments::selectivity_suite(&cfg);
        println!("{out}");
        save("sec45", &out);
    }
    if want("mirrors") {
        println!("== Federated mirrors: online source-permutation scheduling ==\n");
        let out = experiments::mirror_failover_suite(&cfg);
        println!("{out}");
        save("mirrors", &out);
        if trace {
            let (rollup, jsonl) = experiments::mirrors_trace_suite(&cfg);
            println!("{rollup}");
            save("trace-mirrors", &rollup);
            save_as("trace-mirrors.jsonl", &jsonl);
            println!("journal: results/trace-mirrors.jsonl\n");
        }
    }
    if want("mirrors-wall") {
        println!("== Federated mirrors on real threads: wall-clock hedging ==\n");
        let out = experiments::mirror_failover_wall_suite(&cfg);
        println!("{out}");
        save("mirrors-wall", &out);
    }
    if want("fragments-wall") {
        println!("== Threaded plan fragments: parallel subplans over queue_pair ==\n");
        let out = experiments::fragments_wall_suite(&cfg);
        println!("{out}");
        save("fragments-wall", &out);
        if sweep_cuts {
            println!("== Cut-placement sweep: model-predicted vs observed win ==\n");
            let out = experiments::fragments_sweep_suite(&cfg);
            println!("{out}");
            save("fragments-sweep", &out);
        }
    }
    if want("corrective-wall") {
        println!("== Threaded corrective execution: the quiesce protocol on real threads ==\n");
        let (out, ok) = experiments::corrective_wall_suite(&cfg);
        println!("{out}");
        save("corrective-wall", &out);
        if trace {
            let (rollup, jsonl) = experiments::corrective_trace_suite(&cfg);
            println!("{rollup}");
            save("trace-corrective", &rollup);
            save_as("trace-corrective.jsonl", &jsonl);
            println!("journal: results/trace-corrective.jsonl\n");
        }
        if !ok {
            eprintln!("corrective-wall: canonical answers diverged from the committed golden");
            std::process::exit(1);
        }
    }
    if want("serve") {
        println!("== Serve: multi-query front end over the shared learning catalog ==\n");
        let (out, ok) = experiments::serve_suite(&cfg);
        println!("{out}");
        save("serve", &out);
        if !ok {
            eprintln!("serve: answers or decision counts diverged from the committed goldens");
            std::process::exit(1);
        }
    }
    if want("smoke") {
        println!("== Smoke: virtual-clock answer regression vs results/ goldens ==\n");
        let (out, ok) = experiments::smoke_suite(&cfg);
        println!("{out}");
        save("smoke", &out);
        let trace_ok = if trace {
            println!(
                "== Smoke --trace: decision-count regression vs results/trace-summary.txt ==\n"
            );
            let (tout, jsonl, tok) = experiments::smoke_trace_suite(&cfg);
            println!("{tout}");
            save("trace-smoke", &tout);
            save_as("trace-smoke.jsonl", &jsonl);
            println!("journal: results/trace-smoke.jsonl\n");
            tok
        } else {
            true
        };
        if !ok {
            eprintln!("smoke: canonical answers diverged from the committed goldens");
            std::process::exit(1);
        }
        if !trace_ok {
            eprintln!("smoke --trace: adaptivity decisions diverged from the committed rollup");
            std::process::exit(1);
        }
    }
    if want("ops-bench") {
        println!("== Ops bench: row vs columnar kernel throughput ==\n");
        let (out, json, ok) = experiments::ops_bench_suite(&cfg);
        println!("{out}");
        save("ops-bench", &out);
        if std::fs::write("BENCH_ops.json", &json).is_ok() {
            println!("machine-readable: BENCH_ops.json\n");
        }
        if !ok {
            eprintln!("ops-bench: a vectorized kernel fell below the row-path throughput");
            std::process::exit(1);
        }
    }
    if all {
        println!("== Example 2.1 sanity run ==\n");
        print!("{}", experiments::flights_recovery(&cfg));
    }
}
