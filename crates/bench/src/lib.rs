//! Shared experiment infrastructure for the `repro` harness and the
//! Criterion benches: dataset/source construction, strategy runners, and
//! plain-text table formatting.
//!
//! Every table and figure of the paper maps to one function in
//! [`experiments`]; the `repro` binary is a thin CLI over them. See
//! DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
//! results.

pub mod experiments;
pub mod fmt;
pub mod setup;

pub use setup::{ExpConfig, WorkloadQuery};
