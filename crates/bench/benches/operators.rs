//! Criterion microbenchmarks for the engine's operators and state
//! structures: the per-tuple costs behind every experiment (join
//! algorithms at the heart of Figure 5, pre-aggregation behind Figure 6,
//! histogram maintenance behind §4.5's overhead numbers).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use tukwila_core::{ComplementaryJoinPair, RouterKind};
use tukwila_datagen::{Dataset, DatasetConfig, TableId};
use tukwila_exec::agg::{AggSpec, GroupSpec, PreAggOp, WindowPolicy};
use tukwila_exec::join::{MergeJoin, PipelinedHashJoin};
use tukwila_exec::op::IncOp;
use tukwila_relation::agg::AggFunc;
use tukwila_relation::{Tuple, Value};
use tukwila_stats::DynamicHistogram;
use tukwila_storage::btree::BPlusTree;
use tukwila_storage::{StateStructure, TupleHashTable};

fn dataset() -> Dataset {
    Dataset::generate(DatasetConfig::uniform(0.005))
}

fn bench_joins(c: &mut Criterion) {
    let d = dataset();
    let orders = &d.orders;
    let lineitem = &d.lineitem;
    let mut g = c.benchmark_group("join");
    g.sample_size(10);

    g.bench_function("pipelined_hash", |b| {
        b.iter_batched(
            || {
                PipelinedHashJoin::new(
                    Dataset::schema(TableId::Orders),
                    Dataset::schema(TableId::Lineitem),
                    0,
                    0,
                )
            },
            |mut j| {
                let mut out = Vec::new();
                for chunk in orders.chunks(1024) {
                    j.push(0, chunk, &mut out).unwrap();
                }
                for chunk in lineitem.chunks(1024) {
                    j.push(1, chunk, &mut out).unwrap();
                }
                out.len()
            },
            BatchSize::LargeInput,
        )
    });

    g.bench_function("merge_sorted", |b| {
        b.iter_batched(
            || {
                MergeJoin::new(
                    Dataset::schema(TableId::Orders),
                    Dataset::schema(TableId::Lineitem),
                    0,
                    0,
                )
            },
            |mut j| {
                let mut out = Vec::new();
                for chunk in orders.chunks(1024) {
                    j.push(0, chunk, &mut out).unwrap();
                }
                for chunk in lineitem.chunks(1024) {
                    j.push(1, chunk, &mut out).unwrap();
                }
                j.finish_input(0, &mut out).unwrap();
                j.finish_input(1, &mut out).unwrap();
                out.len()
            },
            BatchSize::LargeInput,
        )
    });

    g.bench_function("complementary_sorted", |b| {
        b.iter_batched(
            || {
                ComplementaryJoinPair::new(
                    Dataset::schema(TableId::Orders),
                    Dataset::schema(TableId::Lineitem),
                    0,
                    0,
                    RouterKind::Naive,
                )
            },
            |mut j| {
                let mut out = Vec::new();
                for chunk in orders.chunks(1024) {
                    j.push(0, chunk, &mut out).unwrap();
                }
                for chunk in lineitem.chunks(1024) {
                    j.push(1, chunk, &mut out).unwrap();
                }
                j.finish_input(0, &mut out).unwrap();
                j.finish_input(1, &mut out).unwrap();
                j.finish(&mut out).unwrap();
                out.len()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_preagg(c: &mut Criterion) {
    let d = dataset();
    let lineitem = &d.lineitem;
    let spec = || {
        GroupSpec::new(
            vec![0],
            vec![AggSpec {
                func: AggFunc::Sum,
                col: 9,
            }],
        )
    };
    let schema = Dataset::schema(TableId::Lineitem);
    let mut g = c.benchmark_group("preagg");
    g.sample_size(10);
    for (name, policy) in [
        ("adaptive_window", WindowPolicy::default_adaptive()),
        ("pseudogroup", WindowPolicy::Fixed(1)),
        ("traditional", WindowPolicy::Fixed(usize::MAX)),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || PreAggOp::new(spec(), &schema, policy),
                |mut op| {
                    let mut out = Vec::new();
                    for chunk in lineitem.chunks(1024) {
                        op.push(0, chunk, &mut out).unwrap();
                    }
                    op.finish(&mut out).unwrap();
                    out.len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_state_structures(c: &mut Criterion) {
    let rows: Vec<Tuple> = (0..50_000i64)
        .map(|i| Tuple::new(vec![Value::Int((i * 7919) % 10_000), Value::Int(i)]))
        .collect();
    let mut g = c.benchmark_group("state");
    g.sample_size(10);
    g.bench_function("hash_table_build", |b| {
        b.iter(|| {
            let mut t = TupleHashTable::new(0);
            for r in &rows {
                t.insert(r.clone()).unwrap();
            }
            t.len()
        })
    });
    g.bench_function("btree_build", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new(0);
            for r in &rows {
                t.insert(r.clone());
            }
            t.len()
        })
    });
    let mut table = TupleHashTable::new(0);
    for r in &rows {
        table.insert(r.clone()).unwrap();
    }
    g.bench_function("hash_table_probe", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in 0..10_000i64 {
                hits += table.probe(&Value::Int(k).to_key()).len();
            }
            hits
        })
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let vals: Vec<f64> = (0..100_000).map(|i| ((i * 31) % 5000) as f64).collect();
    let mut g = c.benchmark_group("histogram");
    g.sample_size(10);
    g.bench_function("insert_100k", |b| {
        b.iter(|| {
            let mut h = DynamicHistogram::new(50);
            for v in &vals {
                h.insert(*v);
            }
            h.total()
        })
    });
    let mut h = DynamicHistogram::new(50);
    for v in &vals {
        h.insert(*v);
    }
    g.bench_function("join_estimate", |b| b.iter(|| h.estimate_join(&h)));
    g.finish();
}

criterion_group!(
    benches,
    bench_joins,
    bench_preagg,
    bench_state_structures,
    bench_histogram
);
criterion_main!(benches);
