//! Criterion benchmarks for the adaptive machinery itself: corrective
//! execution end to end (Figure 2's axes at reduced scale), the stitch-up
//! phase, and optimizer/re-optimizer latency (the paper's 1-second polling
//! budget assumes re-optimization is cheap).

use criterion::{criterion_group, criterion_main, Criterion};

use tukwila_core::{CorrectiveConfig, CorrectiveExec};
use tukwila_datagen::{queries, Dataset, DatasetConfig, TableId};
use tukwila_exec::CpuCostModel;
use tukwila_optimizer::{Optimizer, OptimizerContext};
use tukwila_source::{MemSource, Source};

fn sources_for(d: &Dataset, q: &tukwila_optimizer::LogicalQuery) -> Vec<Box<dyn Source>> {
    queries::tables_of(q)
        .into_iter()
        .map(|t| {
            Box::new(MemSource::new(
                t.rel_id(),
                t.name(),
                Dataset::schema(t),
                d.table(t).to_vec(),
            )) as Box<dyn Source>
        })
        .collect()
}

fn bench_corrective(c: &mut Criterion) {
    let d = Dataset::generate(DatasetConfig::uniform(0.005));
    let mut g = c.benchmark_group("corrective");
    g.sample_size(10);

    g.bench_function("static_q10a", |b| {
        b.iter(|| {
            let q = queries::q10a();
            let mut s = sources_for(&d, &q);
            tukwila_core::run_static(
                &q,
                &mut s,
                OptimizerContext::no_statistics(),
                1024,
                CpuCostModel::Zero,
            )
            .unwrap()
            .rows
            .len()
        })
    });

    g.bench_function("adaptive_q10a_single_phase", |b| {
        b.iter(|| {
            let q = queries::q10a();
            let exec = CorrectiveExec::new(
                q.clone(),
                CorrectiveConfig {
                    batch_size: 1024,
                    cpu: CpuCostModel::Zero,
                    switch_threshold: 0.0, // never switch: pure monitoring overhead
                    ..Default::default()
                },
            );
            let mut s = sources_for(&d, &q);
            exec.run(&mut s).unwrap().rows.len()
        })
    });

    g.bench_function("adaptive_q10a_forced_switch", |b| {
        b.iter(|| {
            let q = queries::q10a();
            let exec = CorrectiveExec::new(
                q.clone(),
                CorrectiveConfig {
                    batch_size: 1024,
                    cpu: CpuCostModel::Zero,
                    poll_every_batches: 4,
                    switch_threshold: 100.0,
                    max_phases: 3,
                    warmup_batches: 2,
                    min_remaining_fraction: 0.0,
                    initial_order: Some(vec![
                        TableId::Orders.rel_id(),
                        TableId::Lineitem.rel_id(),
                        TableId::Customer.rel_id(),
                        TableId::Nation.rel_id(),
                    ]),
                    ..Default::default()
                },
            );
            let mut s = sources_for(&d, &q);
            exec.run(&mut s).unwrap().rows.len()
        })
    });
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer");
    g.bench_function("optimize_q5_six_relations", |b| {
        let q = queries::q5();
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        b.iter(|| opt.optimize(&q).unwrap().est_cost)
    });
    g.bench_function("recost_q5", |b| {
        let q = queries::q5();
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.optimize(&q).unwrap();
        b.iter(|| opt.recost(&q, &plan, true).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_corrective, bench_optimizer);
criterion_main!(benches);
