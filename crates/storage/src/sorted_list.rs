//! Tuple list maintained in sort order.

use std::cmp::Ordering;

use tukwila_relation::{cmp_tuples, Key, SortKey, Tuple};

use crate::state::{StateStructure, StructProps};

/// A list kept sorted under a sequence of sort keys. Appends of in-order
/// data are O(1); out-of-order inserts binary-search their position.
/// Merge joins buffer their consumed inputs here, keeping the ordering
/// property available for later reuse.
#[derive(Debug, Clone)]
pub struct SortedList {
    keys: Vec<SortKey>,
    tuples: Vec<Tuple>,
    bytes: usize,
}

impl SortedList {
    pub fn new(keys: Vec<SortKey>) -> SortedList {
        SortedList {
            keys,
            tuples: Vec::new(),
            bytes: 0,
        }
    }

    pub fn sort_keys(&self) -> &[SortKey] {
        &self.keys
    }

    /// Insert maintaining order (stable: equal keys keep arrival order).
    pub fn insert(&mut self, t: Tuple) {
        self.bytes += t.approx_bytes();
        if let Some(last) = self.tuples.last() {
            if cmp_tuples(&self.keys, last, &t) != Ordering::Greater {
                self.tuples.push(t);
                return;
            }
        } else {
            self.tuples.push(t);
            return;
        }
        let pos = self
            .tuples
            .partition_point(|x| cmp_tuples(&self.keys, x, &t) != Ordering::Greater);
        self.tuples.insert(pos, t);
    }

    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Tuples whose *first* sort column equals `key` (binary search).
    pub fn probe_first_col(&self, key: &Key) -> &[Tuple] {
        let col = match self.keys.first() {
            Some(k) => k.col,
            None => return &[],
        };
        let lo = self
            .tuples
            .partition_point(|t| t.key(col).cmp(key) == Ordering::Less);
        let hi = self
            .tuples
            .partition_point(|t| t.key(col).cmp(key) != Ordering::Greater);
        &self.tuples[lo..hi]
    }
}

impl StateStructure for SortedList {
    fn len(&self) -> usize {
        self.tuples.len()
    }

    fn approx_bytes(&self) -> usize {
        self.bytes
    }

    fn props(&self) -> StructProps {
        StructProps {
            keyed_on: self.keys.first().map(|k| k.col),
            sorted_by: self.keys.clone(),
            requires_sorted_input: false,
            partially_spilled: false,
        }
    }

    fn probe_into(&self, key: &Key, out: &mut Vec<Tuple>) {
        out.extend_from_slice(self.probe_first_col(key));
    }

    fn scan(&self) -> Vec<Tuple> {
        self.tuples.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::Value;

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    fn asc() -> Vec<SortKey> {
        vec![SortKey::asc(0)]
    }

    #[test]
    fn in_order_appends() {
        let mut l = SortedList::new(asc());
        for i in 0..100 {
            l.insert(t(i));
        }
        assert_eq!(l.len(), 100);
        assert!(tukwila_relation::sort::is_sorted(&asc(), l.tuples()));
    }

    #[test]
    fn out_of_order_inserts_stay_sorted() {
        let mut l = SortedList::new(asc());
        for v in [5, 1, 9, 3, 3, 7, 0] {
            l.insert(t(v));
        }
        assert!(tukwila_relation::sort::is_sorted(&asc(), l.tuples()));
        assert_eq!(l.len(), 7);
    }

    #[test]
    fn probe_finds_all_duplicates() {
        let mut l = SortedList::new(asc());
        for v in [1, 2, 2, 2, 3] {
            l.insert(t(v));
        }
        let hits = l.probe_first_col(&Value::Int(2).to_key());
        assert_eq!(hits.len(), 3);
        let miss = l.probe_first_col(&Value::Int(9).to_key());
        assert!(miss.is_empty());
    }

    #[test]
    fn trait_probe_matches_inherent() {
        let mut l = SortedList::new(asc());
        for v in [4, 4, 8] {
            l.insert(t(v));
        }
        let mut out = Vec::new();
        l.probe_into(&Value::Int(4).to_key(), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(l.props().sorted_by, asc());
    }
}
