//! A fast, non-cryptographic hasher for join/group keys.
//!
//! Join and grouping operators hash every tuple, so SipHash (the std
//! default) is a measurable tax. This is the classic multiply-rotate-xor
//! scheme (as used by Firefox and rustc); HashDoS resistance is irrelevant
//! for engine-internal keys.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate-xor hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u32::from_le_bytes(buf) as u64);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash one value with [`FxHasher`] (used for spill partitioning, where the
/// partition of a key must be stable across structures).
pub fn hash_one<T: std::hash::Hash>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_ne!(hash_one(&42u64), hash_one(&43u64));
    }

    #[test]
    fn string_hashing_spreads() {
        let a = hash_one(&"orders.o_orderkey");
        let b = hash_one(&"orders.o_custkey");
        assert_ne!(a, b);
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn partial_word_writes() {
        // Exercise the 4-byte and tail paths.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5]);
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 6]);
        assert_ne!(a, h2.finish());
    }
}
