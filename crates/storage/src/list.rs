//! Append-only tuple list.

use tukwila_relation::{Key, Tuple};

use crate::state::{StateStructure, StructProps};

/// The simplest state structure: an append-only list. Used for buffering
/// nested-loops inners and as the fallback when no key column is known.
#[derive(Debug, Default, Clone)]
pub struct TupleList {
    tuples: Vec<Tuple>,
    bytes: usize,
}

impl TupleList {
    pub fn new() -> TupleList {
        TupleList::default()
    }

    pub fn with_capacity(n: usize) -> TupleList {
        TupleList {
            tuples: Vec::with_capacity(n),
            bytes: 0,
        }
    }

    pub fn insert(&mut self, t: Tuple) {
        self.bytes += t.approx_bytes();
        self.tuples.push(t);
    }

    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }
}

impl StateStructure for TupleList {
    fn len(&self) -> usize {
        self.tuples.len()
    }

    fn approx_bytes(&self) -> usize {
        self.bytes
    }

    fn props(&self) -> StructProps {
        StructProps::unkeyed()
    }

    fn probe_into(&self, key: &Key, out: &mut Vec<Tuple>) {
        // No keyed access: filtered scan over every column is meaningless,
        // so a keyless list matches nothing on probe. Callers that need
        // key probes should use a keyed structure.
        let _ = (key, out);
    }

    fn scan(&self) -> Vec<Tuple> {
        self.tuples.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::Value;

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn insert_and_scan() {
        let mut l = TupleList::new();
        for i in 0..5 {
            l.insert(t(i));
        }
        assert_eq!(l.len(), 5);
        assert!(!l.is_empty());
        assert_eq!(l.scan().len(), 5);
        assert_eq!(l.tuples()[3], t(3));
    }

    #[test]
    fn bytes_accumulate() {
        let mut l = TupleList::new();
        assert_eq!(l.approx_bytes(), 0);
        l.insert(t(1));
        assert!(l.approx_bytes() > 0);
    }

    #[test]
    fn probe_on_unkeyed_matches_nothing() {
        let mut l = TupleList::new();
        l.insert(t(1));
        let mut out = Vec::new();
        l.probe_into(&Value::Int(1).to_key(), &mut out);
        assert!(out.is_empty());
    }
}
