//! State structures for the `tukwila` engine (paper §3.1).
//!
//! The paper decouples stateful operators into *state structures* (the data
//! the operator accumulates: join inputs, partial aggregates) and *iterator
//! modules* (the access pattern: build-then-probe, data-availability-driven,
//! merge-driven). This crate provides the state-structure half:
//!
//! * [`list::TupleList`] — append-only list.
//! * [`sorted_list::SortedList`] — list maintained in sort order.
//! * [`hash_table::TupleHashTable`] — equi-key hash table with lazy
//!   partition-wise spill to disk (the XJoin-style overflow interface of
//!   §3.3/§5).
//! * [`hash_sorted::HashSorted`] — hash over sorted data; buckets stay
//!   sorted so range probes binary-search within a bucket.
//! * [`btree::BPlusTree`] — B+ tree with linked leaves for ordered scans.
//!
//! Every structure advertises its properties ([`state::StructProps`]) so the
//! router and re-optimizer can reason about what an existing structure
//! supports (keyed access, ordering), and implements the shared read-view
//! trait [`state::StateStructure`] so intermediate results can be *shared
//! across plans* — the enabler for stitch-up reuse. The
//! [`registry::StateRegistry`] records every materialized subexpression
//! (plan/phase id, logical expression, cardinality) exactly as §3.4.2
//! describes, and keeps the reuse/discard accounting reported in the paper's
//! Tables 1 and 2.

pub mod btree;
pub mod fx;
pub mod hash_sorted;
pub mod hash_table;
pub mod list;
pub mod registry;
pub mod sorted_list;
pub mod spill;
pub mod state;

pub use hash_table::TupleHashTable;
pub use list::TupleList;
pub use registry::{ExprSig, StateRegistry};
pub use sorted_list::SortedList;
pub use state::{StateStructure, StructProps};
