//! Equi-key hash table with lazy partition-wise spill to disk.
//!
//! This is the workhorse structure behind the pipelined hash join, hybrid
//! hash join, and the complementary join pair. Overflow follows the
//! XJoin/Tukwila recipe referenced in §5: when memory pressure demands it,
//! the table lazily splits its keys into `n` partitions (by a hash that is
//! stable across *all* tables in a join, so co-partitioned tables spill the
//! same key ranges) and swaps chosen partitions to disk; spilled partitions
//! can be restored for stitch-up.

use tukwila_relation::{Error, Key, Result, Tuple};

use crate::fx::{hash_one, FxHashMap};
use crate::spill::{SpillFile, SpillSegment};
use crate::state::{StateStructure, StructProps};

/// Which partition a key belongs to, given a partition count. Shared so
/// that the two sides of a join agree (co-partitioning).
pub fn partition_of(key: &Key, nparts: usize) -> usize {
    (hash_one(key) as usize) % nparts.max(1)
}

#[derive(Debug, Default)]
struct SpilledPartition {
    segments: Vec<SpillSegment>,
    count: usize,
}

/// Hash table keyed on one column.
pub struct TupleHashTable {
    key_col: usize,
    map: FxHashMap<Key, Vec<Tuple>>,
    resident: usize,
    bytes: usize,
    /// Set once the table has been partitioned for spilling.
    nparts: usize,
    spilled: Vec<SpilledPartition>,
    spill_file: Option<SpillFile>,
    spilled_count: usize,
}

impl TupleHashTable {
    pub fn new(key_col: usize) -> TupleHashTable {
        TupleHashTable {
            key_col,
            map: FxHashMap::default(),
            resident: 0,
            bytes: 0,
            nparts: 0,
            spilled: Vec::new(),
            spill_file: None,
            spilled_count: 0,
        }
    }

    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Insert a tuple. If its key's partition is currently spilled, the
    /// tuple goes straight to disk.
    pub fn insert(&mut self, t: Tuple) -> Result<()> {
        let key = t.key(self.key_col);
        if self.nparts > 0 {
            let p = partition_of(&key, self.nparts);
            if !self.spilled[p].segments.is_empty() || self.is_partition_spilled(p) {
                return self.append_spilled(p, std::slice::from_ref(&t));
            }
        }
        self.bytes += t.approx_bytes();
        self.resident += 1;
        self.map.entry(key).or_default().push(t);
        Ok(())
    }

    fn is_partition_spilled(&self, p: usize) -> bool {
        self.nparts > 0 && self.spilled[p].count > 0
    }

    fn append_spilled(&mut self, p: usize, tuples: &[Tuple]) -> Result<()> {
        if self.spill_file.is_none() {
            self.spill_file = Some(SpillFile::create()?);
        }
        let seg = self
            .spill_file
            .as_mut()
            .expect("spill file just created")
            .write_tuples(tuples)?;
        self.spilled[p].segments.push(seg);
        self.spilled[p].count += tuples.len();
        self.spilled_count += tuples.len();
        Ok(())
    }

    /// Probe for all in-memory matches of `key`.
    pub fn probe(&self, key: &Key) -> &[Tuple] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether a probe for this key would need a spilled partition (the
    /// caller must then defer the probe to stitch-up, as XJoin does).
    pub fn key_is_spilled(&self, key: &Key) -> bool {
        self.nparts > 0 && self.spilled[partition_of(key, self.nparts)].count > 0
    }

    /// Number of in-memory tuples.
    pub fn resident_len(&self) -> usize {
        self.resident
    }

    /// Number of tuples currently on disk.
    pub fn spilled_len(&self) -> usize {
        self.spilled_count
    }

    /// Iterate in-memory tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.map.values().flat_map(|v| v.iter())
    }

    /// Lazily partition the key space into `nparts` and spill partition `p`
    /// to disk, freeing its memory (paper §5: "lazily partitions all four
    /// hash tables along the same boundaries and swaps some of these
    /// regions to disk").
    pub fn spill_partition(&mut self, p: usize, nparts: usize) -> Result<usize> {
        if self.nparts == 0 {
            self.nparts = nparts;
            self.spilled = (0..nparts).map(|_| SpilledPartition::default()).collect();
        } else if self.nparts != nparts {
            return Err(Error::Exec(format!(
                "hash table already partitioned into {} (asked for {nparts})",
                self.nparts
            )));
        }
        if p >= self.nparts {
            return Err(Error::Exec(format!("partition {p} out of range")));
        }
        let mut victims: Vec<Tuple> = Vec::new();
        let keys: Vec<Key> = self
            .map
            .keys()
            .filter(|k| partition_of(k, nparts) == p)
            .cloned()
            .collect();
        for k in keys {
            if let Some(rows) = self.map.remove(&k) {
                for t in &rows {
                    self.bytes = self.bytes.saturating_sub(t.approx_bytes());
                }
                self.resident -= rows.len();
                victims.extend(rows);
            }
        }
        let n = victims.len();
        if n > 0 || self.spilled[p].count == 0 {
            // Mark the partition spilled even if currently empty so future
            // inserts for it go to disk.
            self.append_spilled(p, &victims)?;
            // append_spilled counts only tuples; ensure empty-marker works.
            if n == 0 {
                self.spilled[p].count = 0;
            }
        }
        Ok(n)
    }

    /// Read a spilled partition back into memory (stitch-up time).
    pub fn restore_partition(&mut self, p: usize) -> Result<Vec<Tuple>> {
        if self.nparts == 0 || p >= self.nparts {
            return Ok(Vec::new());
        }
        let segs = std::mem::take(&mut self.spilled[p].segments);
        let mut out = Vec::with_capacity(self.spilled[p].count);
        if let Some(f) = self.spill_file.as_mut() {
            for seg in segs {
                out.extend(f.read_segment(seg)?);
            }
        }
        self.spilled_count -= self.spilled[p].count;
        self.spilled[p].count = 0;
        for t in &out {
            self.bytes += t.approx_bytes();
            self.resident += 1;
            self.map
                .entry(t.key(self.key_col))
                .or_default()
                .push(t.clone());
        }
        Ok(out)
    }

    /// Distinct in-memory key count (used by selectivity estimation).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

impl StateStructure for TupleHashTable {
    fn len(&self) -> usize {
        self.resident + self.spilled_count
    }

    fn approx_bytes(&self) -> usize {
        self.bytes
    }

    fn props(&self) -> StructProps {
        StructProps {
            keyed_on: Some(self.key_col),
            sorted_by: Vec::new(),
            requires_sorted_input: false,
            partially_spilled: self.spilled_count > 0,
        }
    }

    fn probe_into(&self, key: &Key, out: &mut Vec<Tuple>) {
        out.extend_from_slice(self.probe(key));
    }

    fn scan(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::Value;

    fn t(k: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(v)])
    }

    fn key(k: i64) -> Key {
        Value::Int(k).to_key()
    }

    #[test]
    fn insert_and_probe() {
        let mut h = TupleHashTable::new(0);
        for i in 0..10 {
            h.insert(t(i % 3, i)).unwrap();
        }
        assert_eq!(h.len(), 10);
        assert_eq!(h.probe(&key(0)).len(), 4); // 0,3,6,9
        assert_eq!(h.probe(&key(2)).len(), 3);
        assert!(h.probe(&key(99)).is_empty());
        assert_eq!(h.distinct_keys(), 3);
    }

    #[test]
    fn spill_and_restore_roundtrip() {
        let mut h = TupleHashTable::new(0);
        for i in 0..100 {
            h.insert(t(i, i)).unwrap();
        }
        let before: usize = h.len();
        let mut spilled_total = 0;
        for p in 0..4 {
            spilled_total += h.spill_partition(p, 4).unwrap();
        }
        assert_eq!(spilled_total, 100);
        assert_eq!(h.resident_len(), 0);
        assert_eq!(h.len(), before, "len counts spilled tuples");
        assert!(h.props().partially_spilled);

        // Inserts while spilled go to disk.
        h.insert(t(200, 200)).unwrap();
        assert_eq!(h.resident_len(), 0);

        let mut restored = 0;
        for p in 0..4 {
            restored += h.restore_partition(p).unwrap().len();
        }
        assert_eq!(restored, 101);
        assert_eq!(h.resident_len(), 101);
        assert_eq!(h.probe(&key(200)).len(), 1);
    }

    #[test]
    fn partial_spill_keeps_other_partitions_probeable() {
        let mut h = TupleHashTable::new(0);
        for i in 0..50 {
            h.insert(t(i, i)).unwrap();
        }
        h.spill_partition(1, 4).unwrap();
        let mut in_mem = 0;
        let mut deferred = 0;
        for i in 0..50 {
            if h.key_is_spilled(&key(i)) {
                deferred += 1;
                assert!(h.probe(&key(i)).is_empty());
            } else {
                in_mem += 1;
                assert_eq!(h.probe(&key(i)).len(), 1);
            }
        }
        assert!(deferred > 0 && in_mem > 0);
        assert_eq!(in_mem + deferred, 50);
    }

    #[test]
    fn co_partitioning_is_stable() {
        for k in 0..1000i64 {
            let kk = key(k);
            assert_eq!(partition_of(&kk, 8), partition_of(&kk, 8));
        }
    }

    #[test]
    fn repartition_with_different_count_is_error() {
        let mut h = TupleHashTable::new(0);
        h.insert(t(1, 1)).unwrap();
        h.spill_partition(0, 4).unwrap();
        assert!(h.spill_partition(0, 8).is_err());
    }

    #[test]
    fn scan_matches_inserts() {
        let mut h = TupleHashTable::new(0);
        for i in 0..20 {
            h.insert(t(i % 5, i)).unwrap();
        }
        let mut got: Vec<i64> = h
            .scan()
            .iter()
            .map(|x| x.get(1).as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }
}
