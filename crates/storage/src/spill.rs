//! Tuple serialization and spill files.
//!
//! Hash tables "provide an external interface by which they can be swapped
//! to and from disk" (paper §3.3); this module is that interface. Spill
//! files are append-only; a [`SpillSegment`] names a byte range holding a
//! run of serialized tuples.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tukwila_relation::{Error, Result, Tuple, Value};

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A byte range within a spill file holding `count` serialized tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillSegment {
    pub offset: u64,
    pub len: u64,
    pub count: usize,
}

/// An append-only temporary file of serialized tuples, deleted on drop.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    file: File,
    write_pos: u64,
}

impl SpillFile {
    /// Create a fresh spill file in the system temp directory.
    pub fn create() -> Result<SpillFile> {
        let n = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("tukwila-spill-{}-{}.bin", std::process::id(), n));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        Ok(SpillFile {
            path,
            file,
            write_pos: 0,
        })
    }

    /// Append a run of tuples, returning the segment that names it.
    pub fn write_tuples(&mut self, tuples: &[Tuple]) -> Result<SpillSegment> {
        let mut buf = BytesMut::with_capacity(64 * tuples.len());
        for t in tuples {
            encode_tuple(&mut buf, t);
        }
        let offset = self.write_pos;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(&buf)?;
        self.write_pos += buf.len() as u64;
        Ok(SpillSegment {
            offset,
            len: buf.len() as u64,
            count: tuples.len(),
        })
    }

    /// Read a previously written segment back.
    pub fn read_segment(&mut self, seg: SpillSegment) -> Result<Vec<Tuple>> {
        let mut raw = vec![0u8; seg.len as usize];
        self.file.seek(SeekFrom::Start(seg.offset))?;
        self.file.read_exact(&mut raw)?;
        let mut bytes = Bytes::from(raw);
        let mut out = Vec::with_capacity(seg.count);
        for _ in 0..seg.count {
            out.push(decode_tuple(&mut bytes)?);
        }
        Ok(out)
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.write_pos
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_DATE: u8 = 5;

/// Serialize one tuple (length-prefixed values).
pub fn encode_tuple(buf: &mut BytesMut, t: &Tuple) {
    buf.put_u32_le(t.arity() as u32);
    for v in t.values() {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Bool(b) => {
                buf.put_u8(TAG_BOOL);
                buf.put_u8(*b as u8);
            }
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64_le(*f);
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Date(d) => {
                buf.put_u8(TAG_DATE);
                buf.put_i32_le(*d);
            }
        }
    }
}

/// Deserialize one tuple.
pub fn decode_tuple(bytes: &mut Bytes) -> Result<Tuple> {
    if bytes.remaining() < 4 {
        return Err(Error::Exec("truncated spill tuple header".into()));
    }
    let arity = bytes.get_u32_le() as usize;
    let mut vals = Vec::with_capacity(arity);
    for _ in 0..arity {
        if bytes.remaining() < 1 {
            return Err(Error::Exec("truncated spill value tag".into()));
        }
        let tag = bytes.get_u8();
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_BOOL => Value::Bool(bytes.get_u8() != 0),
            TAG_INT => Value::Int(bytes.get_i64_le()),
            TAG_FLOAT => Value::Float(bytes.get_f64_le()),
            TAG_STR => {
                let n = bytes.get_u32_le() as usize;
                if bytes.remaining() < n {
                    return Err(Error::Exec("truncated spill string".into()));
                }
                let raw = bytes.split_to(n);
                let s = std::str::from_utf8(&raw)
                    .map_err(|e| Error::Exec(format!("bad utf8 in spill file: {e}")))?;
                Value::str(s)
            }
            TAG_DATE => Value::Date(bytes.get_i32_le()),
            other => return Err(Error::Exec(format!("bad spill value tag {other}"))),
        };
        vals.push(v);
    }
    Ok(Tuple::new(vals))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![
                Value::Int(42),
                Value::str("hello"),
                Value::Float(2.5),
                Value::Null,
                Value::Bool(true),
                Value::Date(9999),
            ]),
            Tuple::new(vec![Value::Int(-1)]),
            Tuple::new(vec![]),
        ]
    }

    #[test]
    fn roundtrip_encode_decode() {
        let mut buf = BytesMut::new();
        for t in sample() {
            encode_tuple(&mut buf, &t);
        }
        let mut bytes = buf.freeze();
        for t in sample() {
            assert_eq!(decode_tuple(&mut bytes).unwrap(), t);
        }
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn spill_file_roundtrip() {
        let mut f = SpillFile::create().unwrap();
        let a = f.write_tuples(&sample()).unwrap();
        let more: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::str("x")]))
            .collect();
        let b = f.write_tuples(&more).unwrap();
        assert_eq!(f.read_segment(a).unwrap(), sample());
        assert_eq!(f.read_segment(b).unwrap(), more);
        // Segments can be re-read in any order.
        assert_eq!(f.read_segment(a).unwrap(), sample());
        assert!(f.bytes_written() > 0);
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let path;
        {
            let f = SpillFile::create().unwrap();
            path = f.path.clone();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut bytes = Bytes::from_static(&[9, 9]);
        assert!(decode_tuple(&mut bytes).is_err());
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u8(77); // bad tag
        let mut bytes = buf.freeze();
        assert!(decode_tuple(&mut bytes).is_err());
    }
}
