//! The shared read-view trait over all state structures.

use tukwila_relation::{Key, SortKey, Tuple};

/// Properties a state structure advertises (paper §3.1: structures
/// "advertise certain properties (e.g., supports key-based access, requires
/// sorted data)"). The re-optimizer and the stitch-up join consult these to
/// decide how an existing structure can be reused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructProps {
    /// Column on which key-based probes are supported, if any.
    pub keyed_on: Option<usize>,
    /// Sort order the scan respects, if any.
    pub sorted_by: Vec<SortKey>,
    /// Whether inserts must arrive in sort order.
    pub requires_sorted_input: bool,
    /// Whether part of the structure currently lives on disk.
    pub partially_spilled: bool,
}

impl StructProps {
    pub fn unkeyed() -> StructProps {
        StructProps {
            keyed_on: None,
            sorted_by: Vec::new(),
            requires_sorted_input: false,
            partially_spilled: false,
        }
    }

    pub fn keyed(col: usize) -> StructProps {
        StructProps {
            keyed_on: Some(col),
            ..StructProps::unkeyed()
        }
    }
}

/// Read view shared across plans. Owning operators mutate structures through
/// their concrete types; once a phase seals, structures are registered as
/// `Arc<dyn StateStructure>` and other plans (notably stitch-up) read them
/// through this trait.
pub trait StateStructure: Send + Sync {
    /// Number of stored tuples (including spilled ones).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident memory.
    fn approx_bytes(&self) -> usize;

    /// Advertised properties.
    fn props(&self) -> StructProps;

    /// Append all in-memory tuples matching `key` to `out`. Structures
    /// without keyed access fall back to a filtered scan.
    fn probe_into(&self, key: &Key, out: &mut Vec<Tuple>);

    /// Clone out every in-memory tuple. (Tuple cloning is an `Arc` bump.)
    fn scan(&self) -> Vec<Tuple>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn props_constructors() {
        let u = StructProps::unkeyed();
        assert!(u.keyed_on.is_none());
        assert!(!u.partially_spilled);
        let k = StructProps::keyed(3);
        assert_eq!(k.keyed_on, Some(3));
    }
}
