//! A B+ tree over tuple keys with linked leaves for ordered range scans
//! (paper §3.1 lists "B+ Tree" among the common structures Tukwila
//! includes).

use tukwila_relation::{Key, Tuple};

use crate::state::{StateStructure, StructProps};

const FANOUT: usize = 16;

#[derive(Debug)]
enum Node {
    Internal {
        /// `keys[i]` is the smallest key of `children[i + 1]`.
        keys: Vec<Key>,
        children: Vec<Node>,
    },
    Leaf {
        keys: Vec<Key>,
        /// One row group per distinct key.
        rows: Vec<Vec<Tuple>>,
    },
}

impl Node {
    fn new_leaf() -> Node {
        Node::Leaf {
            keys: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Insert, returning a split (separator key, new right sibling) if this
    /// node overflowed.
    fn insert(&mut self, key: Key, t: Tuple) -> Option<(Key, Node)> {
        match self {
            Node::Leaf { keys, rows } => {
                match keys.binary_search(&key) {
                    Ok(i) => rows[i].push(t),
                    Err(i) => {
                        keys.insert(i, key);
                        rows.insert(i, vec![t]);
                    }
                }
                if keys.len() > FANOUT {
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_rows = rows.split_off(mid);
                    let sep = right_keys[0].clone();
                    Some((
                        sep,
                        Node::Leaf {
                            keys: right_keys,
                            rows: right_rows,
                        },
                    ))
                } else {
                    None
                }
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let split = children[idx].insert(key, t);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if children.len() > FANOUT {
                        let mid = keys.len() / 2;
                        let sep = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // drop the separator that moves up
                        let right_children = children.split_off(mid + 1);
                        return Some((
                            sep,
                            Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            },
                        ));
                    }
                }
                None
            }
        }
    }

    fn probe<'a>(&'a self, key: &Key) -> &'a [Tuple] {
        match self {
            Node::Leaf { keys, rows } => match keys.binary_search(key) {
                Ok(i) => &rows[i],
                Err(_) => &[],
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= key);
                children[idx].probe(key)
            }
        }
    }

    fn collect_range(&self, lo: Option<&Key>, hi: Option<&Key>, out: &mut Vec<Tuple>) {
        match self {
            Node::Leaf { keys, rows } => {
                for (k, r) in keys.iter().zip(rows) {
                    if let Some(lo) = lo {
                        if k < lo {
                            continue;
                        }
                    }
                    if let Some(hi) = hi {
                        if k > hi {
                            continue;
                        }
                    }
                    out.extend_from_slice(r);
                }
            }
            Node::Internal { children, .. } => {
                // Simple recursive range collect; subtree pruning is skipped
                // because rows per node are small (FANOUT bounded).
                for c in children {
                    c.collect_range(lo, hi, out);
                }
            }
        }
    }
}

/// A B+ tree state structure keyed on one tuple column.
pub struct BPlusTree {
    key_col: usize,
    root: Node,
    n: usize,
    bytes: usize,
}

impl BPlusTree {
    pub fn new(key_col: usize) -> BPlusTree {
        BPlusTree {
            key_col,
            root: Node::new_leaf(),
            n: 0,
            bytes: 0,
        }
    }

    pub fn insert(&mut self, t: Tuple) {
        self.bytes += t.approx_bytes();
        self.n += 1;
        let key = t.key(self.key_col);
        if let Some((sep, right)) = self.root.insert(key, t) {
            let old_root = std::mem::replace(&mut self.root, Node::new_leaf());
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            };
        }
    }

    pub fn probe(&self, key: &Key) -> &[Tuple] {
        self.root.probe(key)
    }

    /// Ordered scan of all tuples with `lo <= key <= hi` (either bound may
    /// be open).
    pub fn range(&self, lo: Option<&Key>, hi: Option<&Key>) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.root.collect_range(lo, hi, &mut out);
        out
    }
}

impl StateStructure for BPlusTree {
    fn len(&self) -> usize {
        self.n
    }

    fn approx_bytes(&self) -> usize {
        self.bytes
    }

    fn props(&self) -> StructProps {
        StructProps {
            keyed_on: Some(self.key_col),
            sorted_by: vec![tukwila_relation::SortKey::asc(self.key_col)],
            requires_sorted_input: false,
            partially_spilled: false,
        }
    }

    fn probe_into(&self, key: &Key, out: &mut Vec<Tuple>) {
        out.extend_from_slice(self.probe(key));
    }

    fn scan(&self) -> Vec<Tuple> {
        self.range(None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::Value;

    fn t(k: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(v)])
    }

    fn key(k: i64) -> Key {
        Value::Int(k).to_key()
    }

    #[test]
    fn insert_probe_thousands() {
        let mut b = BPlusTree::new(0);
        for i in 0..5000i64 {
            b.insert(t((i * 7919) % 1000, i));
        }
        assert_eq!(b.len(), 5000);
        // Every key 0..1000 gets exactly 5 rows.
        for k in 0..1000 {
            assert_eq!(b.probe(&key(k)).len(), 5, "key {k}");
        }
        assert!(b.probe(&key(10_000)).is_empty());
    }

    #[test]
    fn scan_is_ordered() {
        let mut b = BPlusTree::new(0);
        for i in (0..500).rev() {
            b.insert(t(i, i));
        }
        let all = b.scan();
        assert_eq!(all.len(), 500);
        let keys: Vec<i64> = all.iter().map(|x| x.get(0).as_int().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn range_bounds() {
        let mut b = BPlusTree::new(0);
        for i in 0..100 {
            b.insert(t(i, i));
        }
        assert_eq!(b.range(Some(&key(10)), Some(&key(19))).len(), 10);
        assert_eq!(b.range(None, Some(&key(4))).len(), 5);
        assert_eq!(b.range(Some(&key(95)), None).len(), 5);
        assert_eq!(b.range(Some(&key(200)), None).len(), 0);
    }

    #[test]
    fn duplicate_keys_accumulate() {
        let mut b = BPlusTree::new(0);
        for i in 0..50 {
            b.insert(t(7, i));
        }
        assert_eq!(b.probe(&key(7)).len(), 50);
    }

    #[test]
    fn props_report_order() {
        let b = BPlusTree::new(2);
        assert_eq!(b.props().keyed_on, Some(2));
        assert_eq!(b.props().sorted_by.len(), 1);
    }
}
