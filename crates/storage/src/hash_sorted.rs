//! Hash over sorted data: hash buckets whose contents stay sorted, allowing
//! binary search within a bucket (paper §3.1's "hash over sorted data").

use std::cmp::Ordering;

use tukwila_relation::{cmp_tuples, Key, SortKey, Tuple};

use crate::fx::FxHashMap;
use crate::state::{StateStructure, StructProps};

/// A hash table keyed on one column whose buckets are kept sorted under a
/// secondary sort order, so that range/point probes within a key's bucket
/// binary-search rather than scan. Useful when sources are sorted and the
/// probe pattern filters within groups.
pub struct HashSorted {
    key_col: usize,
    bucket_sort: Vec<SortKey>,
    map: FxHashMap<Key, Vec<Tuple>>,
    n: usize,
    bytes: usize,
}

impl HashSorted {
    pub fn new(key_col: usize, bucket_sort: Vec<SortKey>) -> HashSorted {
        HashSorted {
            key_col,
            bucket_sort,
            map: FxHashMap::default(),
            n: 0,
            bytes: 0,
        }
    }

    pub fn insert(&mut self, t: Tuple) {
        self.bytes += t.approx_bytes();
        self.n += 1;
        let bucket = self.map.entry(t.key(self.key_col)).or_default();
        // Fast path: in-order append (sorted sources).
        if let Some(last) = bucket.last() {
            if cmp_tuples(&self.bucket_sort, last, &t) != Ordering::Greater {
                bucket.push(t);
                return;
            }
        } else {
            bucket.push(t);
            return;
        }
        let pos =
            bucket.partition_point(|x| cmp_tuples(&self.bucket_sort, x, &t) != Ordering::Greater);
        bucket.insert(pos, t);
    }

    pub fn probe(&self, key: &Key) -> &[Tuple] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Binary search within the bucket for tuples whose first bucket-sort
    /// column equals `inner`.
    pub fn probe_within(&self, key: &Key, inner: &Key) -> &[Tuple] {
        let bucket = match self.map.get(key) {
            Some(b) => b,
            None => return &[],
        };
        let col = match self.bucket_sort.first() {
            Some(k) => k.col,
            None => return bucket,
        };
        let lo = bucket.partition_point(|t| t.key(col).cmp(inner) == Ordering::Less);
        let hi = bucket.partition_point(|t| t.key(col).cmp(inner) != Ordering::Greater);
        &bucket[lo..hi]
    }
}

impl StateStructure for HashSorted {
    fn len(&self) -> usize {
        self.n
    }

    fn approx_bytes(&self) -> usize {
        self.bytes
    }

    fn props(&self) -> StructProps {
        StructProps {
            keyed_on: Some(self.key_col),
            sorted_by: self.bucket_sort.clone(),
            requires_sorted_input: false,
            partially_spilled: false,
        }
    }

    fn probe_into(&self, key: &Key, out: &mut Vec<Tuple>) {
        out.extend_from_slice(self.probe(key));
    }

    fn scan(&self) -> Vec<Tuple> {
        self.map.values().flatten().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::Value;

    fn t(k: i64, s: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(s)])
    }

    fn key(k: i64) -> Key {
        Value::Int(k).to_key()
    }

    #[test]
    fn buckets_stay_sorted() {
        let mut h = HashSorted::new(0, vec![SortKey::asc(1)]);
        for s in [5, 1, 9, 2, 2, 7] {
            h.insert(t(1, s));
        }
        let b = h.probe(&key(1));
        assert_eq!(b.len(), 6);
        assert!(tukwila_relation::sort::is_sorted(&[SortKey::asc(1)], b));
    }

    #[test]
    fn probe_within_binary_searches() {
        let mut h = HashSorted::new(0, vec![SortKey::asc(1)]);
        for s in [1, 2, 2, 3, 5, 5, 5, 8] {
            h.insert(t(7, s));
        }
        assert_eq!(h.probe_within(&key(7), &key(5)).len(), 3);
        assert_eq!(h.probe_within(&key(7), &key(4)).len(), 0);
        assert_eq!(h.probe_within(&key(9), &key(5)).len(), 0);
    }

    #[test]
    fn len_and_scan() {
        let mut h = HashSorted::new(0, vec![SortKey::asc(1)]);
        for k in 0..10 {
            h.insert(t(k % 2, k));
        }
        assert_eq!(h.len(), 10);
        assert_eq!(h.scan().len(), 10);
        assert_eq!(h.props().keyed_on, Some(0));
    }
}
