//! The state-structure registry of paper §3.4.2.
//!
//! Each plan/phase "registers" the state structures it materializes,
//! keyed by the logical expression they hold and annotated with
//! cardinality. The stitch-up optimizer consults the registry to build its
//! exclusion list (subexpressions that must not be recomputed) and to find
//! reusable intermediate results; the registry also keeps the
//! reused-vs-discarded tuple accounting reported in Tables 1 and 2 of the
//! paper.

use std::sync::Arc;

use parking_lot::RwLock;
use tukwila_relation::Schema;

use crate::state::StateStructure;

/// Identity of a logical subexpression within one query: the set of base
/// relations it joins. (Within a single SPJA query, the applicable join and
/// selection predicates are determined by the relation set, so the set is a
/// sufficient key — the paper records "one subexpression selectivity shared
/// across all logically equivalent subexpressions" the same way, §4.2.)
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprSig {
    rels: Box<[u32]>,
}

impl ExprSig {
    /// Build from an unordered set of relation ids.
    pub fn new(mut rels: Vec<u32>) -> ExprSig {
        rels.sort_unstable();
        rels.dedup();
        ExprSig { rels: rels.into() }
    }

    pub fn single(rel: u32) -> ExprSig {
        ExprSig {
            rels: Box::new([rel]),
        }
    }

    pub fn rels(&self) -> &[u32] {
        &self.rels
    }

    pub fn arity(&self) -> usize {
        self.rels.len()
    }

    /// Union of two signatures (join of two subexpressions).
    pub fn union(&self, other: &ExprSig) -> ExprSig {
        let mut v: Vec<u32> = self.rels.iter().chain(other.rels.iter()).copied().collect();
        v.sort_unstable();
        v.dedup();
        ExprSig { rels: v.into() }
    }

    pub fn contains(&self, rel: u32) -> bool {
        self.rels.binary_search(&rel).is_ok()
    }

    pub fn is_subset_of(&self, other: &ExprSig) -> bool {
        self.rels.iter().all(|r| other.contains(*r))
    }
}

impl std::fmt::Display for ExprSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.rels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "R{r}")?;
        }
        write!(f, "}}")
    }
}

/// One registered structure.
pub struct RegistryEntry {
    pub sig: ExprSig,
    /// Phase (plan id) that materialized it.
    pub phase: usize,
    pub schema: Schema,
    pub structure: Arc<dyn StateStructure>,
    pub cardinality: usize,
    reused: std::sync::atomic::AtomicBool,
}

impl RegistryEntry {
    pub fn mark_reused(&self) {
        self.reused
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn was_reused(&self) -> bool {
        self.reused.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Reuse accounting across a whole query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Tuples held in registered intermediate structures that the stitch-up
    /// phase (or a later plan) read back rather than recomputing.
    pub reused_tuples: usize,
    /// Tuples computed in earlier phases that no later phase consumed.
    pub discarded_tuples: usize,
    pub entries_reused: usize,
    pub entries_discarded: usize,
}

/// Thread-safe registry shared between the phase executors, the re-optimizer
/// and the stitch-up executor.
#[derive(Default)]
pub struct StateRegistry {
    entries: RwLock<Vec<Arc<RegistryEntry>>>,
}

impl StateRegistry {
    pub fn new() -> StateRegistry {
        StateRegistry::default()
    }

    /// Register a structure holding the result of `sig` computed by `phase`.
    pub fn register(
        &self,
        sig: ExprSig,
        phase: usize,
        schema: Schema,
        structure: Arc<dyn StateStructure>,
    ) -> Arc<RegistryEntry> {
        let entry = Arc::new(RegistryEntry {
            cardinality: structure.len(),
            sig,
            phase,
            schema,
            structure,
            reused: std::sync::atomic::AtomicBool::new(false),
        });
        self.entries.write().push(entry.clone());
        entry
    }

    /// Find the structure holding exactly `sig` for `phase`, if registered.
    pub fn lookup(&self, sig: &ExprSig, phase: usize) -> Option<Arc<RegistryEntry>> {
        self.entries
            .read()
            .iter()
            .find(|e| e.phase == phase && &e.sig == sig)
            .cloned()
    }

    /// All entries for a signature across phases.
    pub fn lookup_all(&self, sig: &ExprSig) -> Vec<Arc<RegistryEntry>> {
        self.entries
            .read()
            .iter()
            .filter(|e| &e.sig == sig)
            .cloned()
            .collect()
    }

    /// Every registered entry (snapshot).
    pub fn entries(&self) -> Vec<Arc<RegistryEntry>> {
        self.entries.read().clone()
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate reuse/discard accounting across all registered entries,
    /// leaf partitions included — the paper's Table 1 "reused tuples"
    /// (≈750K for Q3A at SF 0.1) counts the buffered source data that
    /// stitch-up reads back instead of re-fetching.
    pub fn reuse_stats(&self) -> ReuseStats {
        let mut s = ReuseStats::default();
        for e in self.entries.read().iter() {
            if e.was_reused() {
                s.reused_tuples += e.cardinality;
                s.entries_reused += 1;
            } else {
                s.discarded_tuples += e.cardinality;
                s.entries_discarded += 1;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::TupleList;
    use tukwila_relation::{DataType, Field, Tuple, Value};

    fn list_of(n: usize) -> Arc<dyn StateStructure> {
        let mut l = TupleList::new();
        for i in 0..n {
            l.insert(Tuple::new(vec![Value::Int(i as i64)]));
        }
        Arc::new(l)
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int)])
    }

    #[test]
    fn sig_identity_ignores_order_and_dups() {
        assert_eq!(ExprSig::new(vec![3, 1, 2]), ExprSig::new(vec![1, 2, 3, 2]));
        assert_ne!(ExprSig::new(vec![1, 2]), ExprSig::new(vec![1, 3]));
        assert_eq!(ExprSig::new(vec![2, 1]).to_string(), "{R1,R2}");
    }

    #[test]
    fn sig_union_and_subset() {
        let a = ExprSig::new(vec![1, 2]);
        let b = ExprSig::new(vec![2, 3]);
        let u = a.union(&b);
        assert_eq!(u, ExprSig::new(vec![1, 2, 3]));
        assert!(a.is_subset_of(&u));
        assert!(!u.is_subset_of(&a));
        assert!(u.contains(3));
        assert!(!a.contains(3));
    }

    #[test]
    fn register_and_lookup_by_phase() {
        let reg = StateRegistry::new();
        let sig = ExprSig::new(vec![1, 2]);
        reg.register(sig.clone(), 0, schema(), list_of(10));
        reg.register(sig.clone(), 1, schema(), list_of(20));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.lookup(&sig, 0).unwrap().cardinality, 10);
        assert_eq!(reg.lookup(&sig, 1).unwrap().cardinality, 20);
        assert!(reg.lookup(&sig, 2).is_none());
        assert_eq!(reg.lookup_all(&sig).len(), 2);
    }

    #[test]
    fn reuse_stats_split_reused_and_discarded() {
        let reg = StateRegistry::new();
        let a = reg.register(ExprSig::new(vec![1, 2]), 0, schema(), list_of(100));
        reg.register(ExprSig::new(vec![1, 2, 3]), 0, schema(), list_of(7));
        // Leaf partitions don't count either way.
        reg.register(ExprSig::single(1), 0, schema(), list_of(1000));
        a.mark_reused();
        let s = reg.reuse_stats();
        assert_eq!(s.reused_tuples, 100);
        // The unreused intermediate and the unreused leaf partition both
        // count as discarded.
        assert_eq!(s.discarded_tuples, 1007);
        assert_eq!(s.entries_reused, 1);
        assert_eq!(s.entries_discarded, 2);
    }
}
