//! Offline shim for the subset of the `bytes` crate this workspace uses:
//! [`BytesMut`] as a growable write buffer ([`BufMut`]), [`Bytes`] as a
//! cursored read buffer ([`Buf`]). Unlike upstream, `Bytes` owns a plain
//! `Vec<u8>` (no reference-counted slices), which is sufficient for the
//! spill-file serialization paths that use it.

use std::ops::Deref;

/// Read cursor over an owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl Bytes {
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            data: s.to_vec(),
            pos: 0,
        }
    }

    /// Split off the first `n` unread bytes as a new `Bytes`, advancing
    /// this cursor past them.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "split_to out of range");
        let out = Bytes {
            data: self.data[self.pos..self.pos + n].to_vec(),
            pos: 0,
        };
        self.pos += n;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian read methods (the used subset of `bytes::Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_bytes(&mut self, n: usize) -> Vec<u8>;

    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }

    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.copy_bytes(4).try_into().unwrap())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_bytes(4).try_into().unwrap())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.copy_bytes(8).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_bytes(8).try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_bytes(8).try_into().unwrap())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.remaining(), "buffer underflow");
        let out = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        out
    }
}

/// Little-endian write methods (the used subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(42);
        w.put_i64_le(-5);
        w.put_f64_le(1.5);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 42);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 1.5);
        let s = r.split_to(3);
        assert_eq!(&*s, b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_to_advances_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(b.get_u8(), 3);
        assert_eq!(b.remaining(), 1);
    }
}
