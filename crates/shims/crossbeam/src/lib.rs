//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `channel::{bounded, Sender, Receiver, SendError}` with blocking
//! bounded-capacity semantics. Backed by `std::sync::mpsc::sync_channel`,
//! plus a shared depth counter so `Sender::len` mirrors crossbeam's
//! queue-introspection API (the exec layer samples it for its
//! queue-depth high-water mark).

pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    /// Blocking bounded sender (crossbeam's `Sender` over a bounded channel).
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        tx: mpsc::SyncSender<T>,
        depth: Arc<AtomicUsize>,
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                tx,
                depth: depth.clone(),
            },
            Receiver { rx, depth },
        )
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.tx.send(value)?;
            self.depth.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }

        /// Non-blocking send: `Full` when at capacity, `Disconnected` when
        /// the receiver hung up.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.tx.try_send(value)?;
            self.depth.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }

        /// Messages currently buffered in the channel (racy by nature;
        /// suitable for watermarks, not for synchronization).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// Whether the channel is currently empty (racy, advisory).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let v = self.rx.recv()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(v)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let v = self.rx.try_recv()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(v)
        }

        /// Messages currently buffered in the channel (racy, advisory).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// Whether the channel is currently empty (racy, advisory).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// Blocking iterator over received messages (ends when every sender
    /// hung up), keeping the depth counter accurate.
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, SendError};

    #[test]
    fn bounded_roundtrip_and_eof() {
        let (tx, rx) = bounded::<i32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err(), "closed after sender drop");
    }

    #[test]
    fn send_to_hung_up_receiver_errors() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(matches!(tx.send(7), Err(SendError(7))));
    }

    #[test]
    fn try_send_distinguishes_full_from_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<i32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }

    #[test]
    fn len_tracks_buffered_depth() {
        let (tx, rx) = bounded::<i32>(3);
        assert_eq!(tx.len(), 0);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(tx.len(), 1);
        rx.try_recv().unwrap();
        assert!(tx.is_empty());
    }

    #[test]
    fn iter_drains_and_keeps_depth() {
        let (tx, rx) = bounded::<i32>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.is_empty());
    }
}
