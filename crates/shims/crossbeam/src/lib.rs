//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `channel::{bounded, Sender, Receiver, SendError}` with blocking
//! bounded-capacity semantics. Backed by `std::sync::mpsc::sync_channel`.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    /// Blocking bounded sender (crossbeam's `Sender` over a bounded channel).
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Non-blocking send: `Full` when at capacity, `Disconnected` when
        /// the receiver hung up.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, SendError};

    #[test]
    fn bounded_roundtrip_and_eof() {
        let (tx, rx) = bounded::<i32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err(), "closed after sender drop");
    }

    #[test]
    fn send_to_hung_up_receiver_errors() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(matches!(tx.send(7), Err(SendError(7))));
    }

    #[test]
    fn try_send_distinguishes_full_from_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<i32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }
}
