//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no registry access, so `rand` is replaced by
//! this path dependency. It provides [`rngs::StdRng`], [`SeedableRng`], and
//! [`Rng::gen_range`] over integer and float ranges, backed by the
//! xoshiro256** generator seeded through SplitMix64. Streams are
//! deterministic per seed (which is all the workspace relies on — every RNG
//! here is seeded explicitly) but are *not* bit-compatible with upstream
//! `rand 0.8`'s ChaCha-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (mirrors `rand::SeedableRng` for the methods used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (mirrors the used subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64_dyn())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        u64_to_f64(self.next_u64_dyn()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit stream behind [`Rng`].
pub trait RngCore {
    fn next_u64_dyn(&mut self) -> u64;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64_dyn(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges [`Rng::gen_range`] accepts, producing values of type `T`.
///
/// Mirroring `rand`, there is exactly one (generic) impl per range shape,
/// so the element type of a half-open or inclusive range literal drives
/// `T`'s inference the same way it does upstream.
pub trait SampleRange<T> {
    fn sample(self, raw: u64) -> T;
}

/// Types uniformly samplable from a range (mirrors `rand::distributions::
/// uniform::SampleUniform`'s role in inference).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between(lo: Self, hi: Self, inclusive: bool, raw: u64) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, raw: u64) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, raw)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, raw: u64) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, raw)
    }
}

#[inline]
fn u64_to_f64(raw: u64) -> f64 {
    // 53 uniform bits in [0, 1).
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: $t, hi: $t, inclusive: bool, raw: u64) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: $t, hi: $t, _inclusive: bool, raw: u64) -> $t {
                lo + (hi - lo) * (u64_to_f64(raw) as $t)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<i64> = (0..100).map(|_| a.gen_range(0i64..1000)).collect();
        let vb: Vec<i64> = (0..100).map(|_| b.gen_range(0i64..1000)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<i64> = (0..100).map(|_| c.gen_range(0i64..1000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = r.gen_range(1usize..=7);
            assert!((1..=7).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }
}
