//! Offline shim for the subset of `parking_lot` this workspace uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning guard-returning `lock()` /
//! `read()` / `write()`. Backed by `std::sync`; a poisoned lock (panicking
//! while holding the guard) is recovered rather than propagated, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
