//! Offline shim for the subset of `criterion` this workspace's benches use.
//!
//! Provides [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! criterion's statistical machinery, each benchmark runs a short
//! fixed-budget loop and prints the median wall time — enough to compare
//! runs by hand and to keep `cargo bench` compiling and running offline.

use std::time::{Duration, Instant};

/// How per-iteration inputs are batched (accepted for API compatibility;
/// the shim sizes every batch at one input per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            samples: Vec::new(),
            budget,
        }
    }

    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if start.elapsed() > self.budget || self.samples.len() >= 100 {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
            if start.elapsed() > self.budget || self.samples.len() >= 100 {
                break;
            }
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2].as_nanos()
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Duration::from_millis(250),
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        let n = b.samples.len();
        println!("bench {id:<48} median {:>12} ns ({n} iters)", b.median_ns());
        self
    }

    /// Named benchmark group (prefixes each contained benchmark id).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Group of related benchmarks sharing an id prefix. `sample_size` is
/// accepted for API compatibility; the shim's fixed time budget governs
/// iteration counts.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
