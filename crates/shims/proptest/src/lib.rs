//! Offline shim for the subset of `proptest` this workspace's property
//! tests use.
//!
//! Supports the [`proptest!`] macro with a `#![proptest_config(..)]`
//! header, strategies over integer/float ranges, tuples of strategies,
//! [`collection::vec`], [`sample::select`] / [`sample::subsequence`],
//! [`arbitrary::any`], simple `".{a,b}"` string patterns, and the
//! `prop_assert*` macros. No shrinking: a failing case panics with its
//! case number and seed so it can be replayed by rerunning the test (the
//! generator stream is deterministic per test).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`cases` is the only knob the shim honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The generator handed to strategies; deterministic per (test, case).
pub struct TestRng(pub StdRng);

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // Stable hash of the test name so each test gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)))
    }
}

/// A value generator (the used subset of proptest's `Strategy`).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// String pattern strategy. The shim understands `".{a,b}"` (a–b arbitrary
/// printable ASCII chars); any other pattern falls back to 0–8 chars.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 8));
        let len = rng.0.gen_range(lo..=hi);
        (0..len)
            .map(|_| char::from(rng.0.gen_range(0x20u8..0x7f)))
            .collect()
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for a `Vec` of `lens` elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        lens: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, lens: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lens }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.lens.is_empty() {
                self.lens.start
            } else {
                rng.0.gen_range(self.lens.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniformly pick one of the given values.
    pub struct Select<T>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.0.gen_range(0..self.0.len())].clone()
        }
    }

    /// An order-preserving random subsequence of exactly `size` elements.
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: usize,
    }

    pub fn subsequence<T: Clone>(values: Vec<T>, size: usize) -> Subsequence<T> {
        assert!(size <= values.len(), "subsequence: size exceeds input");
        Subsequence { values, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            // Reservoir-style index draw, then restore input order.
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            for i in 0..self.size {
                let j = rng.0.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            let mut picked = idx[..self.size].to_vec();
            picked.sort_unstable();
            picked.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

pub mod arbitrary {
    use super::{Strategy, TestRng};
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.next_u64_dyn() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.next_u64_dyn() & 1 == 1
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` ({:?} vs {:?}): {}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// The test-defining macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            xs in prop::collection::vec(-10i64..10, 0..20),
            pick in prop::sample::select(vec![1, 2, 3]),
            s in ".{0,12}",
            raw in any::<i64>(),
        ) {
            prop_assert!(xs.iter().all(|x| (-10..10).contains(x)));
            prop_assert!([1, 2, 3].contains(&pick));
            prop_assert!(s.len() <= 12);
            let _ = raw;
        }

        #[test]
        fn subsequence_preserves_order(
            sub in prop::sample::subsequence((0usize..8).collect::<Vec<_>>(), 8)
        ) {
            prop_assert_eq!(sub, (0usize..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let s = prop::collection::vec(0i64..100, 5..6);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn inner(x in 0i64..10) {
                prop_assert!(x > 100, "forced failure {x}");
            }
        }
        inner();
    }
}
