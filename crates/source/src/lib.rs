//! Simulated autonomous data sources (paper §3.5).
//!
//! Data-integration engines read from remote, autonomous sources with
//! *sequential access only*, unknown cardinality, and unpredictable
//! delivery timing. This crate models that environment deterministically:
//!
//! * A **virtual clock** (microseconds, `u64`): sources expose *arrival
//!   schedules*, and the engine driver advances the clock either by doing
//!   CPU work or by idling until the next tuple arrives. Experiments report
//!   virtual completion time, which makes network experiments (the paper's
//!   Figure 3) both fast and reproducible. See DESIGN.md substitution S2/S3.
//! * [`Source`] — the pull interface: `poll(now, max)` returns tuples that
//!   have arrived by `now`, a `Pending` instant to retry at, or `Eof`.
//! * [`mem::MemSource`] — local table, everything available immediately.
//! * [`delay::DelayedSource`] + [`delay::DelayModel`] — constant-bandwidth
//!   links and the bursty 802.11b-style wireless model used for Figure 3 /
//!   Table 2.
//!
//! # Federated sources
//!
//! A relation need not be served by a single source: the
//! `tukwila-federation` crate registers several candidates per relation —
//! mirrors with different [`delay::DelayModel`]s, or overlapping partial
//! replicas — behind a `FederatedSource` that implements [`Source`], so
//! everything that polls this crate's interface runs over federated
//! relations unchanged. Three trait hooks here exist for that layer:
//! [`source::SourceDescriptor`] (candidate registration/reporting, and the
//! `complete` flag distinguishing full mirrors from partial replicas),
//! `Source::observed_rate` (self-profiled delivery rates feeding the
//! re-optimizer's delivery-bound costing), and `Source::as_any`
//! (post-run report extraction through `Box<dyn Source>`).

pub mod delay;
pub mod mem;
pub mod source;

pub use delay::{DelayModel, DelayedSource};
pub use mem::MemSource;
pub use source::{Poll, Source, SourceDescriptor, SourceProgressView};
