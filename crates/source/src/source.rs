//! The sequential-access source interface.

use tukwila_relation::{Schema, Tuple};
use tukwila_stats::ArrivalSchedule;

/// Result of polling a source at a virtual instant.
#[derive(Debug, Clone, PartialEq)]
pub enum Poll {
    /// Tuples that had arrived by the poll instant (possibly fewer than
    /// requested).
    Ready(Vec<Tuple>),
    /// Nothing available yet; more data arrives at `next_ready_us`.
    Pending { next_ready_us: u64 },
    /// Source exhausted.
    Eof,
}

/// Progress a source can report about itself. Cardinality is generally
/// unknown until EOF (the data-integration reality the paper leans on);
/// `fraction_read` is `Some` only for sources that advertise a total size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceProgressView {
    pub tuples_read: u64,
    pub fraction_read: Option<f64>,
    pub eof: bool,
}

/// Static description of a source candidate: what the federation catalog
/// needs to register, rank, and report on a source without downcasting it.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceDescriptor {
    pub rel_id: u32,
    pub name: String,
    /// Whether this candidate holds the complete relation (a full mirror)
    /// or only a partial replica of it.
    pub complete: bool,
    /// For partial replicas: the inclusive range of relation-key values
    /// this candidate declares it covers (over the first key column).
    /// `None` means undeclared coverage. The federation catalog uses
    /// declared ranges to verify that replicas jointly cover their
    /// relation, and the scheduler skips standbys whose range has already
    /// been fully delivered by drained candidates.
    pub key_range: Option<(i64, i64)>,
    /// Delivery rate (tuples per timeline second) this candidate
    /// *declares* up front — catalog metadata, not an observation. The
    /// federation hedge gate scores parked standbys with it, so the best
    /// payer is woken regardless of registration order. `None` means
    /// undeclared (the gate falls back to the configured prior, then to
    /// the mirror assumption).
    pub declared_rate_tuples_per_sec: Option<f64>,
}

/// A sequential-only data source. Implementations must deliver tuples in a
/// fixed order; reading is destructive (no rewinds), mirroring the paper's
/// "we limit access to the input relations to be sequential only".
pub trait Source: Send {
    /// Stable identifier of the base relation this source serves.
    fn rel_id(&self) -> u32;

    /// Human-readable name (for plans and reports).
    fn name(&self) -> &str;

    fn schema(&self) -> &Schema;

    /// Pull up to `max_tuples` tuples that have arrived by virtual time
    /// `now_us`.
    fn poll(&mut self, now_us: u64, max_tuples: usize) -> Poll;

    /// Progress so far.
    fn progress(&self) -> SourceProgressView;

    /// Candidate descriptor for federation catalogs. The default claims a
    /// complete relation, which is what every non-replicated source is.
    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor {
            rel_id: self.rel_id(),
            name: self.name().to_string(),
            complete: true,
            key_range: None,
            declared_rate_tuples_per_sec: None,
        }
    }

    /// The driver that polls this source is about to stop polling for a
    /// while *through no fault of the source* (a corrective quiesce: the
    /// producer thread parks at a batch boundary while plans switch).
    /// Sources that account for their own delivery (the threaded
    /// federation adapter) snapshot state here so the coming silence is
    /// not misread as consumer saturation. Default: nothing to do.
    fn quiesce_delivery(&mut self) {}

    /// Polling resumes after a [`Source::quiesce_delivery`] window at
    /// timeline instant `now_us`. Self-accounting sources forgive the
    /// backpressure and silence accrued during the pause (it was the
    /// consumer's quiesce, not source misbehavior). Default: nothing to
    /// do. Must be safe to call without a preceding quiesce.
    fn resume_delivery(&mut self, now_us: u64) {
        let _ = now_us;
    }

    /// The engine measured its actual cost-unit→µs conversion (the
    /// corrective warmup calibration) and re-derived the delivery unit
    /// prices from it. Sources that price their own delivery decisions
    /// (the federation adapter's hedge gate) adopt the new prices for
    /// future decisions; already-made decisions stand. Default: nothing
    /// to do.
    fn recalibrate_delivery_costs(&mut self, costs: &tukwila_stats::schedule::DeliveryCosts) {
        let _ = costs;
    }

    /// Observed delivery rate in tuples per virtual second, for sources
    /// that profile themselves (the federated adapter does). Feeds the
    /// re-optimizer's delivery-bound costing; `None` means unprofiled.
    fn observed_rate(&self) -> Option<f64> {
        None
    }

    /// Observed arrival schedule, for sources that profile their own
    /// delivery behavior. The default derives the degenerate uniform
    /// schedule from [`Source::observed_rate`]; self-profiling adapters
    /// override it with the burst-aware piecewise form. Corrective
    /// re-optimization publishes this into the `SelectivityCatalog`, from
    /// where the shared `DeliveryModel` prices scans, hedges, and
    /// fragment cuts.
    fn observed_schedule(&self) -> Option<ArrivalSchedule> {
        self.observed_rate().map(ArrivalSchedule::uniform)
    }

    /// Downcast hook for adapters that expose richer post-run reports
    /// through `Box<dyn Source>` (the federation adapter does). Default:
    /// not downcastable.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_variants_compare() {
        assert_eq!(Poll::Eof, Poll::Eof);
        assert_ne!(
            Poll::Pending { next_ready_us: 5 },
            Poll::Pending { next_ready_us: 6 }
        );
    }
}
