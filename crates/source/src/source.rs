//! The sequential-access source interface.

use tukwila_relation::{Schema, Tuple};

/// Result of polling a source at a virtual instant.
#[derive(Debug, Clone, PartialEq)]
pub enum Poll {
    /// Tuples that had arrived by the poll instant (possibly fewer than
    /// requested).
    Ready(Vec<Tuple>),
    /// Nothing available yet; more data arrives at `next_ready_us`.
    Pending { next_ready_us: u64 },
    /// Source exhausted.
    Eof,
}

/// Progress a source can report about itself. Cardinality is generally
/// unknown until EOF (the data-integration reality the paper leans on);
/// `fraction_read` is `Some` only for sources that advertise a total size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceProgressView {
    pub tuples_read: u64,
    pub fraction_read: Option<f64>,
    pub eof: bool,
}

/// A sequential-only data source. Implementations must deliver tuples in a
/// fixed order; reading is destructive (no rewinds), mirroring the paper's
/// "we limit access to the input relations to be sequential only".
pub trait Source: Send {
    /// Stable identifier of the base relation this source serves.
    fn rel_id(&self) -> u32;

    /// Human-readable name (for plans and reports).
    fn name(&self) -> &str;

    fn schema(&self) -> &Schema;

    /// Pull up to `max_tuples` tuples that have arrived by virtual time
    /// `now_us`.
    fn poll(&mut self, now_us: u64, max_tuples: usize) -> Poll;

    /// Progress so far.
    fn progress(&self) -> SourceProgressView;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_variants_compare() {
        assert_eq!(Poll::Eof, Poll::Eof);
        assert_ne!(
            Poll::Pending { next_ready_us: 5 },
            Poll::Pending { next_ready_us: 6 }
        );
    }
}
