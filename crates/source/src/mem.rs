//! Local in-memory source: every tuple available at time zero.

use tukwila_relation::{Schema, Tuple};

use crate::source::{Poll, Source, SourceProgressView};

/// A local table exposed as a sequential source. Used for the paper's
/// "local data" experiments, where running time isolates computation cost.
pub struct MemSource {
    rel_id: u32,
    name: String,
    schema: Schema,
    tuples: Vec<Tuple>,
    pos: usize,
    advertise_total: bool,
}

impl MemSource {
    pub fn new(rel_id: u32, name: impl Into<String>, schema: Schema, tuples: Vec<Tuple>) -> Self {
        MemSource {
            rel_id,
            name: name.into(),
            schema,
            tuples,
            pos: 0,
            advertise_total: false,
        }
    }

    /// Let the source advertise its total size (enables fraction-read
    /// progress; most data-integration sources do not).
    pub fn with_advertised_total(mut self) -> Self {
        self.advertise_total = true;
        self
    }

    pub fn remaining(&self) -> usize {
        self.tuples.len() - self.pos
    }
}

impl Source for MemSource {
    fn rel_id(&self) -> u32 {
        self.rel_id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, _now_us: u64, max_tuples: usize) -> Poll {
        if self.pos >= self.tuples.len() {
            return Poll::Eof;
        }
        let end = (self.pos + max_tuples).min(self.tuples.len());
        let batch = self.tuples[self.pos..end].to_vec();
        self.pos = end;
        Poll::Ready(batch)
    }

    fn progress(&self) -> SourceProgressView {
        SourceProgressView {
            tuples_read: self.pos as u64,
            fraction_read: if self.advertise_total && !self.tuples.is_empty() {
                Some(self.pos as f64 / self.tuples.len() as f64)
            } else {
                None
            },
            eof: self.pos >= self.tuples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field, Value};

    fn src(n: i64) -> MemSource {
        let schema = Schema::new(vec![Field::new("t.x", DataType::Int)]);
        let tuples = (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        MemSource::new(1, "t", schema, tuples)
    }

    #[test]
    fn drains_in_batches() {
        let mut s = src(10);
        let mut got = 0;
        loop {
            match s.poll(0, 4) {
                Poll::Ready(b) => got += b.len(),
                Poll::Eof => break,
                Poll::Pending { .. } => panic!("mem source never pends"),
            }
        }
        assert_eq!(got, 10);
        assert!(s.progress().eof);
        assert_eq!(s.progress().tuples_read, 10);
    }

    #[test]
    fn sequential_order_preserved() {
        let mut s = src(100);
        let mut all = Vec::new();
        while let Poll::Ready(b) = s.poll(0, 7) {
            all.extend(b);
        }
        let vals: Vec<i64> = all.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        assert_eq!(vals, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fraction_hidden_by_default() {
        let mut s = src(10);
        let _ = s.poll(0, 5);
        assert_eq!(s.progress().fraction_read, None);
        let mut s2 = src(10).with_advertised_total();
        let _ = s2.poll(0, 5);
        assert_eq!(s2.progress().fraction_read, Some(0.5));
    }

    #[test]
    fn empty_source_is_immediately_eof() {
        let mut s = src(0);
        assert_eq!(s.poll(0, 8), Poll::Eof);
        assert!(s.progress().eof);
    }
}
