//! Delayed sources: constant-bandwidth links and the bursty wireless model
//! (DESIGN.md substitution S3, for the paper's Figure 3 / Table 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tukwila_relation::{Schema, Tuple};

use crate::source::{Poll, Source, SourceProgressView};

/// How tuple arrival times are generated.
#[derive(Debug, Clone)]
pub enum DelayModel {
    /// Smooth link: `initial_latency_us`, then `bytes_per_sec` throughput.
    Bandwidth {
        bytes_per_sec: f64,
        initial_latency_us: u64,
    },
    /// Bursty 802.11b-style wireless: data flows at `bytes_per_sec` during
    /// "on" bursts; between bursts the link stalls. Burst and gap durations
    /// are drawn from a seeded RNG, so runs are reproducible. Mean burst
    /// length `burst_ms`, mean gap `gap_ms`.
    Wireless {
        bytes_per_sec: f64,
        burst_ms: f64,
        gap_ms: f64,
        seed: u64,
    },
}

impl DelayModel {
    /// Compute the per-tuple arrival schedule for a relation.
    fn schedule(&self, tuples: &[Tuple]) -> Vec<u64> {
        match *self {
            DelayModel::Bandwidth {
                bytes_per_sec,
                initial_latency_us,
            } => {
                let mut t = initial_latency_us as f64;
                tuples
                    .iter()
                    .map(|tp| {
                        t += tp.approx_bytes() as f64 / bytes_per_sec * 1e6;
                        t as u64
                    })
                    .collect()
            }
            DelayModel::Wireless {
                bytes_per_sec,
                burst_ms,
                gap_ms,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut now = 0.0f64; // microseconds
                let mut burst_left = exp_sample(&mut rng, burst_ms * 1000.0);
                let mut out = Vec::with_capacity(tuples.len());
                for tp in tuples {
                    let mut need = tp.approx_bytes() as f64 / bytes_per_sec * 1e6;
                    // Consume burst time; when a burst is exhausted, idle
                    // through a gap and start a new burst.
                    while need > burst_left {
                        need -= burst_left;
                        now += burst_left;
                        now += exp_sample(&mut rng, gap_ms * 1000.0); // stall
                        burst_left = exp_sample(&mut rng, burst_ms * 1000.0);
                    }
                    burst_left -= need;
                    now += need;
                    out.push(now as u64);
                }
                out
            }
        }
    }
}

/// Exponential sample with the given mean (inverse-CDF method; `rand`'s
/// distribution adapters are not in the offline dependency set).
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

/// A source whose tuples arrive according to a [`DelayModel`] schedule.
pub struct DelayedSource {
    rel_id: u32,
    name: String,
    schema: Schema,
    tuples: Vec<Tuple>,
    arrivals: Vec<u64>,
    pos: usize,
    advertise_total: bool,
    /// Offset the schedule by the first poll's timestamp (connect-on-
    /// demand semantics); `None` anchors at timeline zero (broadcast
    /// semantics, the default).
    anchor_at_first_poll: bool,
    anchor_us: Option<u64>,
}

impl DelayedSource {
    pub fn new(
        rel_id: u32,
        name: impl Into<String>,
        schema: Schema,
        tuples: Vec<Tuple>,
        model: &DelayModel,
    ) -> DelayedSource {
        let arrivals = model.schedule(&tuples);
        DelayedSource {
            rel_id,
            name: name.into(),
            schema,
            tuples,
            arrivals,
            pos: 0,
            advertise_total: false,
            anchor_at_first_poll: false,
            anchor_us: None,
        }
    }

    pub fn with_advertised_total(mut self) -> Self {
        self.advertise_total = true;
        self
    }

    /// Anchor the delivery schedule at the *first poll* instead of
    /// timeline zero — connect-on-demand semantics: the link's initial
    /// latency and bandwidth clock start when the consumer first asks,
    /// the way a standby mirror starts streaming only once a hedge wakes
    /// it. The default (unanchored) schedule models a broadcast-style
    /// feed whose tuples arrive at fixed absolute instants whether or
    /// not anyone is listening — under that model, *when* a standby is
    /// woken cannot change *when* its last tuple exists, so failover
    /// timing is invisible in completion times.
    pub fn anchored(mut self) -> Self {
        self.anchor_at_first_poll = true;
        self
    }

    /// Virtual time at which the last tuple arrives (relative to the
    /// anchor when [`DelayedSource::anchored`]).
    pub fn completion_time_us(&self) -> u64 {
        self.arrivals.last().copied().unwrap_or(0)
    }
}

impl Source for DelayedSource {
    fn rel_id(&self) -> u32 {
        self.rel_id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, now_us: u64, max_tuples: usize) -> Poll {
        if self.pos >= self.tuples.len() {
            return Poll::Eof;
        }
        let offset = if self.anchor_at_first_poll {
            *self.anchor_us.get_or_insert(now_us)
        } else {
            0
        };
        if self.arrivals[self.pos] + offset > now_us {
            return Poll::Pending {
                next_ready_us: self.arrivals[self.pos] + offset,
            };
        }
        let mut end = self.pos;
        let cap = (self.pos + max_tuples).min(self.tuples.len());
        while end < cap && self.arrivals[end] + offset <= now_us {
            end += 1;
        }
        let batch = self.tuples[self.pos..end].to_vec();
        self.pos = end;
        Poll::Ready(batch)
    }

    fn progress(&self) -> SourceProgressView {
        SourceProgressView {
            tuples_read: self.pos as u64,
            fraction_read: if self.advertise_total && !self.tuples.is_empty() {
                Some(self.pos as f64 / self.tuples.len() as f64)
            } else {
                None
            },
            eof: self.pos >= self.tuples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field, Value};

    fn tuples(n: i64) -> (Schema, Vec<Tuple>) {
        let schema = Schema::new(vec![Field::new("t.x", DataType::Int)]);
        let ts = (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        (schema, ts)
    }

    #[test]
    fn bandwidth_schedule_monotone_and_paced() {
        let (schema, ts) = tuples(100);
        let model = DelayModel::Bandwidth {
            bytes_per_sec: 1e6,
            initial_latency_us: 500,
        };
        let s = DelayedSource::new(1, "t", schema, ts, &model);
        assert!(s.arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(s.arrivals[0] >= 500);
        assert!(s.completion_time_us() > s.arrivals[0]);
    }

    #[test]
    fn pending_then_ready() {
        let (schema, ts) = tuples(10);
        let model = DelayModel::Bandwidth {
            bytes_per_sec: 1000.0, // slow: ~24ms per tuple
            initial_latency_us: 0,
        };
        let mut s = DelayedSource::new(1, "t", schema, ts, &model);
        match s.poll(0, 10) {
            Poll::Pending { next_ready_us } => assert!(next_ready_us > 0),
            other => panic!("expected pending, got {other:?}"),
        }
        let done = s.completion_time_us();
        match s.poll(done, 100) {
            Poll::Ready(b) => assert_eq!(b.len(), 10),
            other => panic!("expected all ready, got {other:?}"),
        }
        assert_eq!(s.poll(done, 1), Poll::Eof);
    }

    #[test]
    fn ready_respects_max_tuples() {
        let (schema, ts) = tuples(50);
        let model = DelayModel::Bandwidth {
            bytes_per_sec: 1e9,
            initial_latency_us: 0,
        };
        let mut s = DelayedSource::new(1, "t", schema, ts, &model);
        match s.poll(u64::MAX, 8) {
            Poll::Ready(b) => assert_eq!(b.len(), 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wireless_is_bursty_and_deterministic() {
        let (schema, ts) = tuples(2000);
        let model = DelayModel::Wireless {
            bytes_per_sec: 500_000.0,
            burst_ms: 20.0,
            gap_ms: 30.0,
            seed: 42,
        };
        let a = DelayedSource::new(1, "t", schema.clone(), ts.clone(), &model);
        let b = DelayedSource::new(1, "t", schema.clone(), ts.clone(), &model);
        assert_eq!(a.arrivals, b.arrivals, "same seed, same schedule");

        // Burstiness: the largest inter-arrival gap dwarfs the median.
        let mut gaps: Vec<u64> = a.arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        let max = *gaps.last().unwrap();
        assert!(
            max > median.max(1) * 50,
            "expected bursty gaps, median={median} max={max}"
        );

        // Slower than a smooth link of the same bandwidth (gaps add time).
        let smooth = DelayModel::Bandwidth {
            bytes_per_sec: 500_000.0,
            initial_latency_us: 0,
        };
        let c = DelayedSource::new(1, "t", schema, ts, &smooth);
        assert!(a.completion_time_us() > c.completion_time_us());
    }

    #[test]
    fn different_seeds_differ() {
        let (schema, ts) = tuples(500);
        let m1 = DelayModel::Wireless {
            bytes_per_sec: 1e6,
            burst_ms: 10.0,
            gap_ms: 10.0,
            seed: 1,
        };
        let m2 = DelayModel::Wireless {
            bytes_per_sec: 1e6,
            burst_ms: 10.0,
            gap_ms: 10.0,
            seed: 2,
        };
        let a = DelayedSource::new(1, "t", schema.clone(), ts.clone(), &m1);
        let b = DelayedSource::new(1, "t", schema, ts, &m2);
        assert_ne!(a.arrivals, b.arrivals);
    }
}
