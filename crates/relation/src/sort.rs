//! Sort keys and tuple ordering, used by merge joins, order detection, and
//! the complementary-join router.

use std::cmp::Ordering;

use crate::tuple::Tuple;

/// One component of a sort order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub col: usize,
    pub descending: bool,
}

impl SortKey {
    pub fn asc(col: usize) -> SortKey {
        SortKey {
            col,
            descending: false,
        }
    }

    pub fn desc(col: usize) -> SortKey {
        SortKey {
            col,
            descending: true,
        }
    }

    /// Compare two tuples on this key alone.
    pub fn cmp(&self, a: &Tuple, b: &Tuple) -> Ordering {
        let ord = a.get(self.col).cmp_total(b.get(self.col));
        if self.descending {
            ord.reverse()
        } else {
            ord
        }
    }
}

/// Lexicographic comparison over a sequence of sort keys.
pub fn cmp_tuples(keys: &[SortKey], a: &Tuple, b: &Tuple) -> Ordering {
    for k in keys {
        let ord = k.cmp(a, b);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Whether a slice of tuples is sorted under the given keys.
pub fn is_sorted(keys: &[SortKey], tuples: &[Tuple]) -> bool {
    tuples
        .windows(2)
        .all(|w| cmp_tuples(keys, &w[0], &w[1]) != Ordering::Greater)
}

/// Sort tuples in place under the given keys (stable).
pub fn sort_tuples(keys: &[SortKey], tuples: &mut [Tuple]) {
    tuples.sort_by(|a, b| cmp_tuples(keys, a, b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(a: i64, b: i64) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn single_key_ordering() {
        let k = SortKey::asc(0);
        assert_eq!(k.cmp(&t(1, 0), &t(2, 0)), Ordering::Less);
        assert_eq!(SortKey::desc(0).cmp(&t(1, 0), &t(2, 0)), Ordering::Greater);
    }

    #[test]
    fn lexicographic_ordering() {
        let keys = [SortKey::asc(0), SortKey::desc(1)];
        assert_eq!(cmp_tuples(&keys, &t(1, 5), &t(1, 3)), Ordering::Less);
        assert_eq!(cmp_tuples(&keys, &t(1, 3), &t(1, 3)), Ordering::Equal);
        assert_eq!(cmp_tuples(&keys, &t(2, 9), &t(1, 0)), Ordering::Greater);
    }

    #[test]
    fn is_sorted_detects_violations() {
        let keys = [SortKey::asc(0)];
        assert!(is_sorted(&keys, &[t(1, 0), t(1, 9), t(3, 0)]));
        assert!(!is_sorted(&keys, &[t(2, 0), t(1, 0)]));
        assert!(is_sorted(&keys, &[]));
        assert!(is_sorted(&keys, &[t(5, 5)]));
    }

    #[test]
    fn sort_tuples_orders() {
        let keys = [SortKey::asc(0)];
        let mut v = vec![t(3, 0), t(1, 0), t(2, 0)];
        sort_tuples(&keys, &mut v);
        assert!(is_sorted(&keys, &v));
    }
}
