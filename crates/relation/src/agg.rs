//! Aggregate functions with *mergeable* accumulator state.
//!
//! Adaptive data partitioning rests on the algebraic fact that
//! `min`/`max`/`sum`/`count` distribute over union, and `avg` does after
//! decomposition into `(sum, count)` (paper §2.2, footnote 1). The
//! [`AggState`] type makes that property first-class: partial states from
//! different phases, plans, or pre-aggregation windows merge exactly.

use std::fmt;

use crate::error::{Error, Result};
use crate::value::Value;

/// The aggregate functions supported by the query model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Min,
    Max,
    Sum,
    Count,
    /// Average, carried as `(sum, count)` so it distributes over union.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Avg => "avg",
        };
        f.write_str(s)
    }
}

/// A running accumulator for one aggregate over one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Min(Option<Value>),
    Max(Option<Value>),
    Sum(f64, bool),
    Count(i64),
    /// `(sum, count)`.
    Avg(f64, i64),
}

impl AggState {
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Sum => AggState::Sum(0.0, false),
            AggFunc::Count => AggState::Count(0),
            AggFunc::Avg => AggState::Avg(0.0, 0),
        }
    }

    pub fn func(&self) -> AggFunc {
        match self {
            AggState::Min(_) => AggFunc::Min,
            AggState::Max(_) => AggFunc::Max,
            AggState::Sum(..) => AggFunc::Sum,
            AggState::Count(_) => AggFunc::Count,
            AggState::Avg(..) => AggFunc::Avg,
        }
    }

    /// Fold one input value into the accumulator. `Null` inputs are ignored
    /// (SQL semantics) except for `count`, which counts rows.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            AggState::Count(n) => {
                *n += 1;
                return Ok(());
            }
            _ if v.is_null() => return Ok(()),
            AggState::Min(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => v.cmp_total(c) == std::cmp::Ordering::Less,
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => v.cmp_total(c) == std::cmp::Ordering::Greater,
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            AggState::Sum(s, seen) => {
                *s += v.as_float()?;
                *seen = true;
            }
            AggState::Avg(s, n) => {
                *s += v.as_float()?;
                *n += 1;
            }
        }
        Ok(())
    }

    /// Merge another partial state of the same function into this one.
    /// This is the distributivity-over-union operation that stitch-up and
    /// pre-aggregation rely on.
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += *b,
            (AggState::Sum(a, sa), AggState::Sum(b, sb)) => {
                *a += *b;
                *sa |= *sb;
            }
            (AggState::Avg(a, na), AggState::Avg(b, nb)) => {
                *a += *b;
                *na += *nb;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    let replace = match a {
                        None => true,
                        Some(av) => bv.cmp_total(av) == std::cmp::Ordering::Less,
                    };
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    let replace = match a {
                        None => true,
                        Some(av) => bv.cmp_total(av) == std::cmp::Ordering::Greater,
                    };
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (a, b) => {
                return Err(Error::Exec(format!(
                    "cannot merge aggregate states {:?} and {:?}",
                    a.func(),
                    b.func()
                )))
            }
        }
        Ok(())
    }

    /// Finalize into an output value.
    pub fn finish(&self) -> Value {
        match self {
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Sum(s, seen) => {
                if *seen {
                    Value::Float(*s)
                } else {
                    Value::Null
                }
            }
            AggState::Count(n) => Value::Int(*n),
            AggState::Avg(s, n) => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*s / *n as f64)
                }
            }
        }
    }

    /// Re-encode the accumulator as carried values, used when partial
    /// aggregates flow through a plan (pre-aggregation output schema). For
    /// `avg` the carried form is the sum; the count rides in a parallel
    /// `count` accumulator created by the planner.
    pub fn carried(&self) -> Value {
        match self {
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Sum(s, seen) => {
                if *seen {
                    Value::Float(*s)
                } else {
                    Value::Null
                }
            }
            AggState::Count(n) => Value::Int(*n),
            AggState::Avg(s, n) => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*s)
                }
            }
        }
    }
}

/// How a downstream (final) aggregate consumes the *carried* output of an
/// upstream partial aggregate: `sum` and `count` become `sum`, `min`/`max`
/// stay themselves, and `avg` needs `(sum of sums) / (sum of counts)`, which
/// the planner expresses as two columns.
pub fn coalesce_func(f: AggFunc) -> AggFunc {
    match f {
        AggFunc::Min => AggFunc::Min,
        AggFunc::Max => AggFunc::Max,
        AggFunc::Sum => AggFunc::Sum,
        AggFunc::Count => AggFunc::Sum,
        AggFunc::Avg => AggFunc::Sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut s = AggState::new(func);
        for v in vals {
            s.update(v).unwrap();
        }
        s.finish()
    }

    #[test]
    fn basic_aggregates() {
        let vals = [Value::Int(3), Value::Int(1), Value::Int(2)];
        assert_eq!(run(AggFunc::Min, &vals), Value::Int(1));
        assert_eq!(run(AggFunc::Max, &vals), Value::Int(3));
        assert_eq!(run(AggFunc::Sum, &vals), Value::Float(6.0));
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(3));
        assert_eq!(run(AggFunc::Avg, &vals), Value::Float(2.0));
    }

    #[test]
    fn nulls_ignored_except_count() {
        let vals = [Value::Null, Value::Int(5), Value::Null];
        assert_eq!(run(AggFunc::Min, &vals), Value::Int(5));
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(3));
        assert_eq!(run(AggFunc::Avg, &vals), Value::Float(5.0));
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(run(AggFunc::Min, &[]), Value::Null);
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
    }

    /// The core ADP property: folding a stream in one pass equals splitting
    /// it arbitrarily, folding each part, and merging.
    #[test]
    fn merge_distributes_over_union() {
        let vals: Vec<Value> = (0..100).map(|i| Value::Int((i * 37) % 41)).collect();
        for func in [
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            let whole = run(func, &vals);
            for split in [1usize, 13, 50, 99] {
                let mut a = AggState::new(func);
                let mut b = AggState::new(func);
                for v in &vals[..split] {
                    a.update(v).unwrap();
                }
                for v in &vals[split..] {
                    b.update(v).unwrap();
                }
                a.merge(&b).unwrap();
                assert_eq!(a.finish(), whole, "func={func} split={split}");
            }
        }
    }

    #[test]
    fn merge_rejects_mismatched_functions() {
        let mut a = AggState::new(AggFunc::Min);
        let b = AggState::new(AggFunc::Count);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn coalesce_mapping() {
        assert_eq!(coalesce_func(AggFunc::Count), AggFunc::Sum);
        assert_eq!(coalesce_func(AggFunc::Min), AggFunc::Min);
        assert_eq!(coalesce_func(AggFunc::Avg), AggFunc::Sum);
    }
}
