//! Named, typed attribute lists.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::tuple::TupleAdapter;
use crate::value::DataType;

/// One attribute of a schema. Names are fully qualified
/// (`"orders.o_orderkey"`) so that join outputs never collide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields. Schemas are shared (`Arc`) between plans,
/// state structures, and the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema {
            fields: fields.into(),
        }
    }

    pub fn empty() -> Schema {
        Schema::new(Vec::new())
    }

    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Resolve a (qualified or unqualified) name to a column index.
    /// Unqualified names match when exactly one field's suffix after `.`
    /// equals the name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.fields.iter().position(|f| f.name == name) {
            return Ok(i);
        }
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            let suffix = f.name.rsplit('.').next().unwrap_or(&f.name);
            if suffix == name {
                if found.is_some() {
                    return Err(Error::Schema(format!("ambiguous column name {name}")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| Error::Schema(format!("no column named {name}")))
    }

    /// Concatenate two schemas (join output schema).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut f = Vec::with_capacity(self.arity() + other.arity());
        f.extend_from_slice(&self.fields);
        f.extend_from_slice(&other.fields);
        Schema::new(f)
    }

    /// Project to the given columns.
    pub fn project(&self, cols: &[usize]) -> Schema {
        Schema::new(cols.iter().map(|&c| self.fields[c].clone()).collect())
    }

    /// Build a [`TupleAdapter`] that converts tuples laid out as `self`
    /// into the layout of `target`. Fails unless the two schemas contain
    /// exactly the same field names (any order).
    pub fn adapter_to(&self, target: &Schema) -> Result<TupleAdapter> {
        if self.arity() != target.arity() {
            return Err(Error::Schema(format!(
                "cannot adapt schema of arity {} to arity {}",
                self.arity(),
                target.arity()
            )));
        }
        let mut mapping = Vec::with_capacity(target.arity());
        for f in target.fields.iter() {
            let i = self
                .fields
                .iter()
                .position(|g| g.name == f.name)
                .ok_or_else(|| {
                    Error::Schema(format!("field {} missing from source schema", f.name))
                })?;
            mapping.push(i);
        }
        Ok(TupleAdapter::new(mapping))
    }

    /// True if both schemas contain the same set of field names.
    pub fn same_columns(&self, other: &Schema) -> bool {
        if self.arity() != other.arity() {
            return false;
        }
        self.fields
            .iter()
            .all(|f| other.fields.iter().any(|g| g.name == f.name))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", fld.name, fld.dtype)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("orders.o_orderkey", DataType::Int),
            Field::new("orders.o_custkey", DataType::Int),
            Field::new("customer.c_custkey", DataType::Int),
        ])
    }

    #[test]
    fn qualified_lookup() {
        let s = schema();
        assert_eq!(s.index_of("orders.o_custkey").unwrap(), 1);
    }

    #[test]
    fn unqualified_lookup() {
        let s = schema();
        assert_eq!(s.index_of("c_custkey").unwrap(), 2);
    }

    #[test]
    fn missing_column_errors() {
        assert!(schema().index_of("nope").is_err());
    }

    #[test]
    fn ambiguous_unqualified_errors() {
        let s = Schema::new(vec![
            Field::new("a.k", DataType::Int),
            Field::new("b.k", DataType::Int),
        ]);
        assert!(s.index_of("k").is_err());
        assert_eq!(s.index_of("a.k").unwrap(), 0);
    }

    #[test]
    fn concat_and_project() {
        let s = schema();
        let t = Schema::new(vec![Field::new("lineitem.l_orderkey", DataType::Int)]);
        let joined = s.concat(&t);
        assert_eq!(joined.arity(), 4);
        let p = joined.project(&[3, 0]);
        assert_eq!(p.field(0).name, "lineitem.l_orderkey");
    }

    #[test]
    fn adapter_between_permuted_schemas() {
        let s = schema();
        let permuted = s.project(&[2, 0, 1]);
        let adapter = s.adapter_to(&permuted).unwrap();
        assert_eq!(adapter.mapping(), &[2, 0, 1]);
        // And the reverse direction composes back to identity.
        let back = permuted.adapter_to(&s).unwrap();
        let roundtrip = back.compose(&adapter);
        assert!(roundtrip.is_identity());
    }

    #[test]
    fn adapter_rejects_mismatched_schemas() {
        let s = schema();
        let other = Schema::new(vec![Field::new("x", DataType::Int)]);
        assert!(s.adapter_to(&other).is_err());
    }

    #[test]
    fn same_columns_ignores_order() {
        let s = schema();
        let permuted = s.project(&[1, 2, 0]);
        assert!(s.same_columns(&permuted));
        assert!(!s.same_columns(&Schema::empty()));
    }
}
