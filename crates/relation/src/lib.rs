//! Tuple, value, schema, and expression layer for the `tukwila` adaptive
//! query engine.
//!
//! This crate is the bottom-most substrate of the workspace: every other
//! crate (state structures, operators, optimizer, the ADP runtime) builds on
//! the types defined here.
//!
//! Highlights:
//!
//! * [`Value`] / [`Key`] — dynamically typed attribute values, plus a
//!   hashable/orderable key form used by join and grouping operators.
//! * [`Tuple`] — a cheap-to-clone, immutable row (`Arc<[Value]>`). Tuples in
//!   the paper are "vectors of pointers to individual attribute value
//!   containers"; `Arc` cloning gives us the same zero-copy sharing.
//! * [`TupleAdapter`] — permutes attribute order between physically
//!   different layouts of the same logical schema (paper §3.2, "tuple
//!   order-incompatibility").
//! * [`Schema`] — named, typed attribute lists with qualified names.
//! * [`Expr`] — scalar expressions and predicates for
//!   select-project-join-aggregate queries.
//! * [`agg`] — aggregate functions (`min`/`max`/`sum`/`count`/`avg`) with
//!   *mergeable* accumulator state, the algebraic property (distributivity
//!   over union) that adaptive data partitioning relies on.

pub mod agg;
pub mod column;
pub mod error;
pub mod expr;
pub mod schema;
pub mod sort;
pub mod tuple;
pub mod value;

pub use column::{Bitmap, Column, ColumnData, ColumnarBatch};
pub use error::{Error, Result};
pub use expr::{CmpOp, Expr};
pub use schema::{Field, Schema};
pub use sort::{cmp_tuples, SortKey};
pub use tuple::{Tuple, TupleAdapter};
pub use value::{DataType, Key, Value};
