//! Columnar batches: typed column vectors with null and selection bitmaps.
//!
//! The row representation ([`crate::Tuple`] = `Arc<[Value]>`) pays a
//! pointer chase and an enum branch per *value*; the hot operators
//! (filter, hash join, dedup, exchange shipping) only need a branch per
//! *column*. A [`ColumnarBatch`] stores each attribute as one typed
//! vector ([`ColumnData`]) plus an optional validity [`Bitmap`], and
//! carries an optional selection [`Bitmap`] so filters can mark survivors
//! without materializing a new batch.
//!
//! Conversion happens at the edges ([`ColumnarBatch::from_tuples`] /
//! [`ColumnarBatch::to_tuples`]) and is total: a column whose values mix
//! types (legal in this dynamically typed engine, e.g. arithmetic that
//! widens some rows to `Float`) degrades to [`ColumnData::Mixed`], which
//! every kernel handles with the row-at-a-time fallback. Vectorized
//! results are therefore *always* value-identical to the row path — the
//! golden-answer CI relies on it.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::agg::{AggFunc, AggState};
use crate::error::{Error, Result};
use crate::expr::{CmpOp, Expr};
use crate::sort::SortKey;
use crate::tuple::Tuple;
use crate::value::{GroupKey, Key, Value};

/// A packed bitmap over row indices (little-endian within each word).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap of `len` bits.
    pub fn zeros(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones bitmap of `len` bits.
    pub fn ones(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Count of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise AND (in place). Panics on length mismatch.
    pub fn and(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Bitwise OR (in place). Panics on length mismatch.
    pub fn or(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Bitwise NOT (in place).
    pub fn not(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

/// The typed payload of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Booleans.
    Bool(Vec<bool>),
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dates (days since epoch), kept distinct from `Int` like [`Value`].
    Date(Vec<i32>),
    /// Dictionary-encoded strings: `codes[row]` indexes `dict`. Repeated
    /// payloads (status flags, region names) are stored once; string
    /// kernels branch per distinct code, not per row.
    Str {
        /// Per-row index into `dict`.
        codes: Vec<u32>,
        /// Distinct payloads in first-appearance order.
        dict: Vec<Arc<str>>,
    },
    /// Row fallback for columns whose values mix types. Every kernel
    /// degrades to per-value dispatch on this variant, keeping the
    /// columnar path total.
    Mixed(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }
}

/// One attribute of a [`ColumnarBatch`]: typed data plus validity.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    /// Validity bitmap: a set bit means non-null. `None` = all valid.
    /// Slots at null positions hold an arbitrary default (0 / code 0) and
    /// must never be read without consulting the bitmap.
    nulls: Option<Bitmap>,
}

impl Column {
    /// The typed payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The validity bitmap (`None` = no nulls).
    pub fn nulls(&self) -> Option<&Bitmap> {
        self.nulls.as_ref()
    }

    /// Rows in the column.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.data.len() == 0
    }

    #[inline]
    fn is_null(&self, row: usize) -> bool {
        match &self.nulls {
            Some(b) => !b.get(row),
            None => match &self.data {
                // Mixed columns carry their nulls inline.
                ColumnData::Mixed(v) => v[row].is_null(),
                _ => false,
            },
        }
    }

    /// Materialize the value at `row` (clones string payload pointers,
    /// never the payload bytes).
    pub fn value(&self, row: usize) -> Value {
        if self.is_null(row) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Date(v) => Value::Date(v[row]),
            ColumnData::Str { codes, dict } => Value::Str(dict[codes[row] as usize].clone()),
            ColumnData::Mixed(v) => v[row].clone(),
        }
    }

    /// The key form of the value at `row` (same encoding as
    /// [`Value::to_key`]).
    pub fn key(&self, row: usize) -> Key {
        if self.is_null(row) {
            return Key::Null;
        }
        match &self.data {
            ColumnData::Bool(v) => Key::Bool(v[row]),
            ColumnData::Int(v) => Key::Int(v[row]),
            ColumnData::Float(v) => Key::Float(total_order_bits(v[row])),
            ColumnData::Date(v) => Key::Date(v[row]),
            ColumnData::Str { codes, dict } => Key::Str(dict[codes[row] as usize].clone()),
            ColumnData::Mixed(v) => v[row].to_key(),
        }
    }

    /// Compare the value at `row` against `rhs` with [`Value::cmp_total`]
    /// semantics, without materializing a [`Value`]. `None` when either
    /// side is SQL null (predicates treat that as false).
    #[inline]
    pub fn cmp_value(&self, row: usize, rhs: &Value) -> Option<Ordering> {
        if self.is_null(row) || rhs.is_null() {
            return None;
        }
        Some(match (&self.data, rhs) {
            (ColumnData::Int(v), Value::Int(b)) => v[row].cmp(b),
            (ColumnData::Int(v), Value::Float(b)) => (v[row] as f64).total_cmp(b),
            (ColumnData::Int(v), Value::Date(b)) => v[row].cmp(&(*b as i64)),
            (ColumnData::Float(v), Value::Float(b)) => v[row].total_cmp(b),
            (ColumnData::Float(v), Value::Int(b)) => v[row].total_cmp(&(*b as f64)),
            (ColumnData::Float(v), Value::Date(b)) => v[row].total_cmp(&(*b as f64)),
            (ColumnData::Date(v), Value::Date(b)) => v[row].cmp(b),
            (ColumnData::Date(v), Value::Int(b)) => (v[row] as i64).cmp(b),
            (ColumnData::Date(v), Value::Float(b)) => (v[row] as f64).total_cmp(b),
            (ColumnData::Bool(v), Value::Bool(b)) => v[row].cmp(b),
            (ColumnData::Str { codes, dict }, Value::Str(b)) => {
                dict[codes[row] as usize].as_ref().cmp(b.as_ref())
            }
            (ColumnData::Mixed(v), rhs) => v[row].cmp_total(rhs),
            // Mismatched non-numeric types: the deterministic type-rank
            // order of Value::cmp_total.
            _ => return Some(self.value(row).cmp_total(rhs)),
        })
    }
}

/// A batch of rows in columnar layout, with an optional selection bitmap
/// marking the rows that are logically present.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBatch {
    cols: Vec<Column>,
    rows: usize,
    sel: Option<Bitmap>,
}

impl ColumnarBatch {
    /// An empty batch of the given arity.
    pub fn empty(arity: usize) -> ColumnarBatch {
        ColumnarBatch {
            cols: (0..arity)
                .map(|_| Column {
                    data: ColumnData::Mixed(Vec::new()),
                    nulls: None,
                })
                .collect(),
            rows: 0,
            sel: None,
        }
    }

    /// Transpose a row batch into columns. Total: a column mixing value
    /// types degrades to [`ColumnData::Mixed`]. Panics if tuples disagree
    /// on arity (schemas are validated at plan time).
    pub fn from_tuples(tuples: &[Tuple]) -> ColumnarBatch {
        let rows = tuples.len();
        let arity = tuples.first().map_or(0, Tuple::arity);
        let mut cols = Vec::with_capacity(arity);
        for c in 0..arity {
            cols.push(build_column(tuples, c));
        }
        ColumnarBatch {
            cols,
            rows,
            sel: None,
        }
    }

    /// Physical rows (before selection).
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Logical rows (after selection).
    pub fn selected_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.count_ones(),
            None => self.rows,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Column accessor.
    pub fn column(&self, c: usize) -> &Column {
        &self.cols[c]
    }

    /// The selection bitmap (`None` = all rows selected).
    pub fn selection(&self) -> Option<&Bitmap> {
        self.sel.as_ref()
    }

    /// Replace the selection bitmap. Composes with an existing selection
    /// by intersection (a filter over a filtered batch narrows it).
    pub fn select(&mut self, mask: Bitmap) {
        assert_eq!(mask.len(), self.rows, "selection length mismatch");
        match &mut self.sel {
            Some(s) => s.and(&mask),
            None => self.sel = Some(mask),
        }
    }

    /// Materialize the value at (`row`, `col`) — `row` is a *physical*
    /// index, ignoring the selection.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.cols[col].value(row)
    }

    /// Iterator over selected physical row indices, ascending.
    pub fn selected_indices(&self) -> Vec<usize> {
        match &self.sel {
            Some(s) => s.iter_ones().collect(),
            None => (0..self.rows).collect(),
        }
    }

    /// Transpose back to rows, honoring the selection. The inverse edge of
    /// [`ColumnarBatch::from_tuples`]: output values are identical to the
    /// rows that produced the batch (string payloads stay shared via the
    /// dictionary).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.selected_rows());
        match &self.sel {
            Some(s) => {
                for r in s.iter_ones() {
                    out.push(self.row_tuple(r));
                }
            }
            None => {
                for r in 0..self.rows {
                    out.push(self.row_tuple(r));
                }
            }
        }
        out
    }

    fn row_tuple(&self, row: usize) -> Tuple {
        self.tuple_at(row)
    }

    /// Materialize one *physical* row as a [`Tuple`] (ignores the
    /// selection; string payloads stay shared).
    pub fn tuple_at(&self, row: usize) -> Tuple {
        Tuple::new(self.cols.iter().map(|c| c.value(row)).collect())
    }

    /// Column projection (in the given order), dropping the selection by
    /// compacting first if one is set.
    pub fn project(&self, cols: &[usize]) -> ColumnarBatch {
        let base = if self.sel.is_some() {
            self.compact()
        } else {
            self.clone()
        };
        ColumnarBatch {
            cols: cols.iter().map(|&c| base.cols[c].clone()).collect(),
            rows: base.rows,
            sel: None,
        }
    }

    /// Materialize the selection: gather surviving rows into dense columns
    /// and clear the bitmap.
    pub fn compact(&self) -> ColumnarBatch {
        let sel = match &self.sel {
            None => return self.clone(),
            Some(s) => s,
        };
        let idx: Vec<usize> = sel.iter_ones().collect();
        ColumnarBatch {
            cols: self.cols.iter().map(|c| gather_column(c, &idx)).collect(),
            rows: idx.len(),
            sel: None,
        }
    }

    /// Build an output batch by gathering `(left_row, right_row)` pairs
    /// from two batches and concatenating their columns — the join-output
    /// constructor (row orientation `left ++ right`). Selections must have
    /// been compacted away by the caller (physical indices are used).
    pub fn gather_concat(
        left: &ColumnarBatch,
        right: &ColumnarBatch,
        pairs: &[(u32, u32)],
    ) -> ColumnarBatch {
        let li: Vec<usize> = pairs.iter().map(|&(l, _)| l as usize).collect();
        let ri: Vec<usize> = pairs.iter().map(|&(_, r)| r as usize).collect();
        let mut cols = Vec::with_capacity(left.arity() + right.arity());
        for c in &left.cols {
            cols.push(gather_column(c, &li));
        }
        for c in &right.cols {
            cols.push(gather_column(c, &ri));
        }
        ColumnarBatch {
            cols,
            rows: pairs.len(),
            sel: None,
        }
    }

    /// Gather the given physical rows (in order, duplicates allowed) into
    /// a dense batch with no selection — the payload-permutation step of a
    /// columnar sort. Row `i` of the output is physical row `idx[i]` of
    /// `self`; the batch's own selection, if any, is ignored (callers pass
    /// indices that already honor it, e.g. from [`sort_permutation`]).
    pub fn gather(&self, idx: &[u32]) -> ColumnarBatch {
        let idx: Vec<usize> = idx.iter().map(|&r| r as usize).collect();
        ColumnarBatch {
            cols: self.cols.iter().map(|c| gather_column(c, &idx)).collect(),
            rows: idx.len(),
            sel: None,
        }
    }

    /// Rough in-memory footprint in bytes (mirrors
    /// [`Tuple::approx_bytes`] at the batch level).
    pub fn approx_bytes(&self) -> usize {
        let mut n = 0;
        for c in &self.cols {
            n += match &c.data {
                ColumnData::Bool(v) => v.len(),
                ColumnData::Int(v) => v.len() * 8,
                ColumnData::Float(v) => v.len() * 8,
                ColumnData::Date(v) => v.len() * 4,
                ColumnData::Str { codes, dict } => {
                    codes.len() * 4 + dict.iter().map(|s| s.len()).sum::<usize>()
                }
                ColumnData::Mixed(v) => v.len() * std::mem::size_of::<Value>(),
            };
        }
        n
    }
}

fn build_column(tuples: &[Tuple], c: usize) -> Column {
    use crate::value::DataType;
    // One scan to find the column's uniform type (ignoring nulls).
    let mut dtype: Option<DataType> = None;
    let mut has_null = false;
    let mut uniform = true;
    for t in tuples {
        match t.get(c).dtype() {
            None => has_null = true,
            Some(d) => match dtype {
                None => dtype = Some(d),
                Some(prev) if prev == d => {}
                Some(_) => {
                    uniform = false;
                    break;
                }
            },
        }
    }
    if !uniform {
        return Column {
            data: ColumnData::Mixed(tuples.iter().map(|t| t.get(c).clone()).collect()),
            nulls: None,
        };
    }
    let rows = tuples.len();
    let mut nulls = if has_null {
        Some(Bitmap::ones(rows))
    } else {
        None
    };
    macro_rules! typed {
        ($variant:ident, $default:expr, $extract:expr) => {{
            let mut v = Vec::with_capacity(rows);
            for (i, t) in tuples.iter().enumerate() {
                match t.get(c) {
                    Value::Null => {
                        v.push($default);
                        if let Some(b) = nulls.as_mut() {
                            b.set(i, false);
                        }
                    }
                    other => v.push($extract(other)),
                }
            }
            ColumnData::$variant(v)
        }};
    }
    let data = match dtype {
        // All-null column: an Int vector of defaults with an all-zero
        // validity bitmap round-trips every row as Null.
        None => {
            if rows > 0 {
                nulls = Some(Bitmap::zeros(rows));
            }
            ColumnData::Int(vec![0; rows])
        }
        Some(DataType::Bool) => typed!(Bool, false, |v: &Value| match v {
            Value::Bool(b) => *b,
            _ => unreachable!("uniform Bool column"),
        }),
        Some(DataType::Int) => typed!(Int, 0, |v: &Value| match v {
            Value::Int(x) => *x,
            _ => unreachable!("uniform Int column"),
        }),
        Some(DataType::Float) => typed!(Float, 0.0, |v: &Value| match v {
            Value::Float(x) => *x,
            _ => unreachable!("uniform Float column"),
        }),
        Some(DataType::Date) => typed!(Date, 0, |v: &Value| match v {
            Value::Date(x) => *x,
            _ => unreachable!("uniform Date column"),
        }),
        Some(DataType::Str) => {
            let mut codes = Vec::with_capacity(rows);
            let mut dict: Vec<Arc<str>> = Vec::new();
            // First-appearance dictionary build; linear probe is fine for
            // the low-cardinality columns dictionaries pay off on, and a
            // hash index kicks in past a threshold.
            let mut index: std::collections::HashMap<Arc<str>, u32> =
                std::collections::HashMap::new();
            for (i, t) in tuples.iter().enumerate() {
                match t.get(c) {
                    Value::Null => {
                        codes.push(0);
                        if let Some(b) = nulls.as_mut() {
                            b.set(i, false);
                        }
                    }
                    Value::Str(s) => {
                        let code = *index.entry(s.clone()).or_insert_with(|| {
                            dict.push(s.clone());
                            (dict.len() - 1) as u32
                        });
                        codes.push(code);
                    }
                    _ => unreachable!("uniform Str column"),
                }
            }
            if dict.is_empty() {
                // All-null string column still needs one dict slot for
                // the default code 0.
                dict.push(Arc::from(""));
            }
            ColumnData::Str { codes, dict }
        }
    };
    Column { data, nulls }
}

fn gather_column(c: &Column, idx: &[usize]) -> Column {
    let nulls = c.nulls.as_ref().map(|b| {
        let mut out = Bitmap::ones(idx.len());
        for (i, &r) in idx.iter().enumerate() {
            if !b.get(r) {
                out.set(i, false);
            }
        }
        out
    });
    let data = match &c.data {
        ColumnData::Bool(v) => ColumnData::Bool(idx.iter().map(|&r| v[r]).collect()),
        ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&r| v[r]).collect()),
        ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&r| v[r]).collect()),
        ColumnData::Date(v) => ColumnData::Date(idx.iter().map(|&r| v[r]).collect()),
        ColumnData::Str { codes, dict } => ColumnData::Str {
            codes: idx.iter().map(|&r| codes[r]).collect(),
            dict: dict.clone(),
        },
        ColumnData::Mixed(v) => ColumnData::Mixed(idx.iter().map(|&r| v[r].clone()).collect()),
    };
    Column { data, nulls }
}

// --- vectorized predicate evaluation -----------------------------------

/// Evaluate `pred` over every row of `batch`, producing a bitmap with a
/// set bit for each matching row (the batch's own selection is *not*
/// intersected — callers compose with [`ColumnarBatch::select`]).
///
/// Semantics are identical to [`Expr::matches`] row by row: comparisons
/// against SQL null are false, `And`/`Or` are boolean, `Not` flips.
/// Expressions outside the vectorizable subset (arithmetic, non-boolean
/// members) return an error; callers fall back to the row path, which
/// reproduces the row engine's exact behavior including short-circuit
/// evaluation order.
pub fn eval_predicate(pred: &Expr, batch: &ColumnarBatch) -> Result<Bitmap> {
    let rows = batch.num_rows();
    match pred {
        Expr::Lit(Value::Bool(b)) => Ok(if *b {
            Bitmap::ones(rows)
        } else {
            Bitmap::zeros(rows)
        }),
        Expr::Col(c) => {
            // A bare boolean column used as a predicate. Null bools are an
            // error on the row path (`as_bool` on Null), so fall back
            // rather than guess.
            let col = batch
                .cols
                .get(*c)
                .ok_or_else(|| Error::Exec(format!("column {c} out of range")))?;
            match (col.data(), col.nulls()) {
                (ColumnData::Bool(v), None) => {
                    let mut out = Bitmap::zeros(rows);
                    for (i, &b) in v.iter().enumerate() {
                        if b {
                            out.set(i, true);
                        }
                    }
                    Ok(out)
                }
                _ => Err(Error::Type("predicate column is not boolean".into())),
            }
        }
        Expr::Cmp(l, op, r) => eval_cmp(l, *op, r, batch),
        Expr::And(es) => {
            let mut acc = Bitmap::ones(rows);
            for e in es {
                acc.and(&eval_predicate(e, batch)?);
            }
            Ok(acc)
        }
        Expr::Or(es) => {
            let mut acc = Bitmap::zeros(rows);
            for e in es {
                acc.or(&eval_predicate(e, batch)?);
            }
            Ok(acc)
        }
        Expr::Not(e) => {
            let mut m = eval_predicate(e, batch)?;
            m.not();
            Ok(m)
        }
        other => Err(Error::Exec(format!("predicate not vectorizable: {other}"))),
    }
}

fn eval_cmp(l: &Expr, op: CmpOp, r: &Expr, batch: &ColumnarBatch) -> Result<Bitmap> {
    match (l, r) {
        (Expr::Col(c), Expr::Lit(v)) => cmp_col_lit(batch, *c, op, v),
        (Expr::Lit(v), Expr::Col(c)) => cmp_col_lit(batch, *c, flip(op), v),
        (Expr::Col(a), Expr::Col(b)) => cmp_col_col(batch, *a, op, *b),
        (Expr::Lit(a), Expr::Lit(b)) => {
            let rows = batch.num_rows();
            if a.is_null() || b.is_null() {
                return Ok(Bitmap::zeros(rows));
            }
            let ord = a.cmp_total(b);
            Ok(if op.eval(ord, ord == Ordering::Equal) {
                Bitmap::ones(rows)
            } else {
                Bitmap::zeros(rows)
            })
        }
        _ => Err(Error::Exec("comparison operands not vectorizable".into())),
    }
}

/// Mirror `a OP b` into `b OP' a`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

#[inline]
fn keep(op: CmpOp, ord: Ordering) -> bool {
    op.eval(ord, ord == Ordering::Equal)
}

fn cmp_col_lit(batch: &ColumnarBatch, c: usize, op: CmpOp, lit: &Value) -> Result<Bitmap> {
    let rows = batch.num_rows();
    let col = batch
        .cols
        .get(c)
        .ok_or_else(|| Error::Exec(format!("column {c} out of range")))?;
    let mut out = Bitmap::zeros(rows);
    if lit.is_null() {
        return Ok(out); // NULL comparisons are false for every row.
    }
    // Typed kernels: one branch per batch, a tight loop per type.
    match (&col.data, lit) {
        (ColumnData::Int(v), Value::Int(b)) => {
            for (i, x) in v.iter().enumerate() {
                if keep(op, x.cmp(b)) {
                    out.set(i, true);
                }
            }
        }
        (ColumnData::Int(v), Value::Float(b)) => {
            for (i, x) in v.iter().enumerate() {
                if keep(op, (*x as f64).total_cmp(b)) {
                    out.set(i, true);
                }
            }
        }
        (ColumnData::Float(v), Value::Float(b)) => {
            for (i, x) in v.iter().enumerate() {
                if keep(op, x.total_cmp(b)) {
                    out.set(i, true);
                }
            }
        }
        (ColumnData::Float(v), Value::Int(b)) => {
            let b = *b as f64;
            for (i, x) in v.iter().enumerate() {
                if keep(op, x.total_cmp(&b)) {
                    out.set(i, true);
                }
            }
        }
        (ColumnData::Date(v), Value::Date(b)) => {
            for (i, x) in v.iter().enumerate() {
                if keep(op, x.cmp(b)) {
                    out.set(i, true);
                }
            }
        }
        (ColumnData::Str { codes, dict }, Value::Str(b)) => {
            // Decide once per distinct payload, then map codes.
            let verdicts: Vec<bool> = dict
                .iter()
                .map(|s| keep(op, s.as_ref().cmp(b.as_ref())))
                .collect();
            for (i, &code) in codes.iter().enumerate() {
                if verdicts[code as usize] {
                    out.set(i, true);
                }
            }
        }
        // Every remaining combination (Bool, Date-vs-Int, Mixed, type-rank
        // mismatches) goes through the per-row comparator, which is still
        // branch-per-row but allocation-free.
        _ => {
            for i in 0..rows {
                if let Some(ord) = col.cmp_value(i, lit) {
                    if keep(op, ord) {
                        out.set(i, true);
                    }
                }
            }
        }
    }
    // Null rows never match (cmp kernels above read slot defaults).
    if let Some(nulls) = &col.nulls {
        out.and(nulls);
    }
    Ok(out)
}

fn cmp_col_col(batch: &ColumnarBatch, a: usize, op: CmpOp, b: usize) -> Result<Bitmap> {
    let rows = batch.num_rows();
    let (ca, cb) = (
        batch
            .cols
            .get(a)
            .ok_or_else(|| Error::Exec(format!("column {a} out of range")))?,
        batch
            .cols
            .get(b)
            .ok_or_else(|| Error::Exec(format!("column {b} out of range")))?,
    );
    let mut out = Bitmap::zeros(rows);
    match (&ca.data, &cb.data) {
        (ColumnData::Int(x), ColumnData::Int(y)) => {
            for i in 0..rows {
                if keep(op, x[i].cmp(&y[i])) {
                    out.set(i, true);
                }
            }
        }
        (ColumnData::Float(x), ColumnData::Float(y)) => {
            for i in 0..rows {
                if keep(op, x[i].total_cmp(&y[i])) {
                    out.set(i, true);
                }
            }
        }
        (
            ColumnData::Str {
                codes: xc,
                dict: xd,
            },
            ColumnData::Str {
                codes: yc,
                dict: yd,
            },
        ) => {
            for i in 0..rows {
                let ord = xd[xc[i] as usize].as_ref().cmp(yd[yc[i] as usize].as_ref());
                if keep(op, ord) {
                    out.set(i, true);
                }
            }
        }
        _ => {
            // Generic per-row path via one materialized side.
            for i in 0..rows {
                let rhs = cb.value(i);
                if let Some(ord) = ca.cmp_value(i, &rhs) {
                    if keep(op, ord) {
                        out.set(i, true);
                    }
                }
            }
            // cmp_value already handled both null sides; skip the bitmap
            // intersection below by returning here.
            return Ok(out);
        }
    }
    if let Some(n) = &ca.nulls {
        out.and(n);
    }
    if let Some(n) = &cb.nulls {
        out.and(n);
    }
    Ok(out)
}

// --- key and hash kernels ----------------------------------------------

const HASH_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(HASH_SEED)
}

#[inline]
fn hash_str(h: u64, s: &str) -> u64 {
    let mut h = h;
    let mut bytes = s.as_bytes();
    while bytes.len() >= 8 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes[..8]);
        h = mix(h, u64::from_le_bytes(buf));
        bytes = &bytes[8..];
    }
    let mut tail = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    mix(h, tail ^ ((bytes.len() as u64) << 56))
}

/// Stable hash of one [`Key`] element folded into `h`. The canonical
/// encoding both the row path ([`key_hash`]) and the columnar kernels
/// ([`hash_keys_into`]) produce, so they can probe the same table.
#[inline]
pub fn fold_key_elem(h: u64, k: &Key) -> u64 {
    match k {
        Key::Null => mix(h, 0x9e37_79b9_7f4a_7c15),
        Key::Bool(b) => mix(mix(h, 1), *b as u64),
        Key::Int(v) => mix(mix(h, 2), *v as u64),
        Key::Float(bits) => mix(mix(h, 3), *bits),
        Key::Date(d) => mix(mix(h, 4), *d as u64 & 0xFFFF_FFFF),
        Key::Str(s) => hash_str(mix(h, 5), s),
    }
}

/// Stable hash of a composite key (row-path counterpart of
/// [`hash_keys_into`]).
pub fn key_hash(key: &GroupKey) -> u64 {
    let mut h = 0u64;
    for k in key.iter() {
        h = fold_key_elem(h, k);
    }
    h
}

/// Fold one [`Value`] into a running key hash. Equals
/// [`fold_key_elem`] of [`Value::to_key`] without materializing the
/// [`Key`] (no string `Arc` clone, no allocation).
#[inline]
pub fn fold_value(h: u64, v: &Value) -> u64 {
    match v {
        Value::Null => mix(h, 0x9e37_79b9_7f4a_7c15),
        Value::Bool(b) => mix(mix(h, 1), *b as u64),
        Value::Int(x) => mix(mix(h, 2), *x as u64),
        Value::Float(f) => mix(mix(h, 3), total_order_bits(*f)),
        Value::Date(d) => mix(mix(h, 4), *d as u64 & 0xFFFF_FFFF),
        Value::Str(s) => hash_str(mix(h, 5), s),
    }
}

/// Hash of the composite key over `cols` of one tuple — equals
/// [`key_hash`] of [`Tuple::group_key`] with zero allocation.
pub fn tuple_key_hash(t: &Tuple, cols: &[usize]) -> u64 {
    let mut h = 0u64;
    for &c in cols {
        h = fold_value(h, t.get(c));
    }
    h
}

/// Whether `v.to_key() == *k`, without materializing the key.
#[inline]
pub fn value_key_eq(v: &Value, k: &Key) -> bool {
    match (v, k) {
        (Value::Null, Key::Null) => true,
        (Value::Bool(a), Key::Bool(b)) => a == b,
        (Value::Int(a), Key::Int(b)) => a == b,
        (Value::Float(a), Key::Float(b)) => total_order_bits(*a) == *b,
        (Value::Date(a), Key::Date(b)) => a == b,
        (Value::Str(a), Key::Str(b)) => a.as_ref() == b.as_ref(),
        _ => false,
    }
}

/// Compute the composite-key hash of every row in one pass per key
/// column, appending into `out` (cleared first). Hashes equal
/// [`key_hash`] of the corresponding [`ColumnarBatch`] row keys, so a
/// seen-set keyed by these hashes can be probed from either
/// representation. String columns hash each distinct dictionary payload
/// once and fan the result out by code.
pub fn hash_keys_into(batch: &ColumnarBatch, cols: &[usize], out: &mut Vec<u64>) {
    let rows = batch.num_rows();
    out.clear();
    out.resize(rows, 0u64);
    for (ci, &c) in cols.iter().enumerate() {
        let col = &batch.cols[c];
        match (&col.data, &col.nulls) {
            (ColumnData::Int(v), None) => {
                for (h, x) in out.iter_mut().zip(v) {
                    *h = mix(mix(*h, 2), *x as u64);
                }
            }
            (ColumnData::Str { codes, dict }, None) if ci == 0 => {
                // First key column: the running hash is 0 for every row,
                // so each distinct payload can be hashed once and fanned
                // out by dictionary code.
                let hashed: Vec<u64> = dict.iter().map(|s| hash_str(mix(0, 5), s)).collect();
                for (h, &code) in out.iter_mut().zip(codes) {
                    *h = hashed[code as usize];
                }
            }
            (ColumnData::Str { codes, dict }, None) => {
                for (h, &code) in out.iter_mut().zip(codes) {
                    *h = hash_str(mix(*h, 5), &dict[code as usize]);
                }
            }
            _ => {
                // Generic per-row fold via the Key form (allocation-free
                // for scalar types).
                for (i, h) in out.iter_mut().enumerate() {
                    *h = fold_key_elem(*h, &col.key(i));
                }
            }
        }
    }
}

/// Compute the composite key of every *selected* row in column order
/// (one type branch per column instead of per value). Equivalent to
/// calling [`Tuple::group_key`] on each row of
/// [`ColumnarBatch::to_tuples`].
pub fn group_keys(batch: &ColumnarBatch, cols: &[usize]) -> Vec<GroupKey> {
    group_keys_at(batch, cols, &batch.selected_indices())
}

/// [`group_keys`] over an explicit list of physical rows (windowed
/// consumers like pre-aggregation key one window of a batch at a time).
pub fn group_keys_at(batch: &ColumnarBatch, cols: &[usize], idx: &[usize]) -> Vec<GroupKey> {
    // A rowless batch built from zero tuples has no columns, so the column
    // lookups below would be out of bounds; there are no keys to build.
    if idx.is_empty() {
        return Vec::new();
    }
    let mut flat: Vec<Key> = Vec::with_capacity(idx.len() * cols.len());
    // Column-major fill...
    for &c in cols {
        let col = &batch.cols[c];
        for &r in idx {
            flat.push(col.key(r));
        }
    }
    // ...then row-major assembly.
    let n = idx.len();
    let mut out = Vec::with_capacity(n);
    for r in 0..n {
        let mut k = Vec::with_capacity(cols.len());
        for c in 0..cols.len() {
            k.push(flat[c * n + r].clone());
        }
        out.push(k.into_boxed_slice());
    }
    out
}

/// Row-batch counterpart of [`group_keys`]: compute every row's composite
/// key with one pass per key column over a `&[Tuple]` batch. The type
/// branch in [`Value::to_key`] stays predictable because each inner loop
/// sees one column.
pub fn group_keys_rows(tuples: &[Tuple], cols: &[usize]) -> Vec<GroupKey> {
    let n = tuples.len();
    let mut flat: Vec<Key> = Vec::with_capacity(n * cols.len());
    for &c in cols {
        for t in tuples {
            flat.push(t.get(c).to_key());
        }
    }
    let mut out = Vec::with_capacity(n);
    for r in 0..n {
        let mut k = Vec::with_capacity(cols.len());
        for c in 0..cols.len() {
            k.push(flat[c * n + r].clone());
        }
        out.push(k.into_boxed_slice());
    }
    out
}

/// Whether the key element at (`row`, `col`) equals `k` (the comparison
/// the dedup seen-set uses), without materializing a [`Key`].
#[inline]
pub fn key_elem_eq(col: &Column, row: usize, k: &Key) -> bool {
    match (&col.data, k) {
        (ColumnData::Int(v), Key::Int(b)) => !col.is_null(row) && v[row] == *b,
        (ColumnData::Str { codes, dict }, Key::Str(b)) => {
            !col.is_null(row) && dict[codes[row] as usize].as_ref() == b.as_ref()
        }
        (ColumnData::Float(v), Key::Float(b)) => {
            !col.is_null(row) && total_order_bits(v[row]) == *b
        }
        (ColumnData::Date(v), Key::Date(b)) => !col.is_null(row) && v[row] == *b,
        (ColumnData::Bool(v), Key::Bool(b)) => !col.is_null(row) && v[row] == *b,
        _ => col.key(row) == *k,
    }
}

// --- sort and aggregate kernels ----------------------------------------

/// Compare two physical rows of one column with [`Value::cmp_total`]
/// semantics (SQL null sorts first), without materializing values.
#[inline]
fn cmp_col_rows(col: &Column, a: usize, b: usize) -> Ordering {
    match (col.is_null(a), col.is_null(b)) {
        (true, true) => return Ordering::Equal,
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        (false, false) => {}
    }
    match &col.data {
        ColumnData::Bool(v) => v[a].cmp(&v[b]),
        ColumnData::Int(v) => v[a].cmp(&v[b]),
        ColumnData::Float(v) => v[a].total_cmp(&v[b]),
        ColumnData::Date(v) => v[a].cmp(&v[b]),
        ColumnData::Str { codes, dict } => {
            if codes[a] == codes[b] {
                Ordering::Equal
            } else {
                dict[codes[a] as usize]
                    .as_ref()
                    .cmp(dict[codes[b] as usize].as_ref())
            }
        }
        ColumnData::Mixed(v) => v[a].cmp_total(&v[b]),
    }
}

/// Stable sort permutation of the *selected* physical rows under `keys`.
/// The returned indices visit rows in the order
/// [`crate::sort::sort_tuples`] would produce over
/// [`ColumnarBatch::to_tuples`], ties staying in batch order. Feed the
/// result to [`ColumnarBatch::gather`] to materialize sorted columns.
pub fn sort_permutation(batch: &ColumnarBatch, keys: &[SortKey]) -> Vec<u32> {
    let mut idx: Vec<u32> = match batch.selection() {
        Some(s) => s.iter_ones().map(|r| r as u32).collect(),
        None => (0..batch.num_rows() as u32).collect(),
    };
    // A rowless batch built from zero tuples has no columns at all, so the
    // key lookups below would be out of bounds; the permutation is empty.
    if idx.is_empty() {
        return idx;
    }
    // Single ascending key over non-null ints: sort by the raw i64.
    if let [k] = keys {
        if !k.descending {
            let col = batch.column(k.col);
            if let (ColumnData::Int(v), None) = (&col.data, &col.nulls) {
                idx.sort_by_key(|&r| v[r as usize]);
                return idx;
            }
        }
    }
    let cols: Vec<&Column> = keys.iter().map(|k| batch.column(k.col)).collect();
    idx.sort_by(|&a, &b| {
        for (k, col) in keys.iter().zip(&cols) {
            let mut ord = cmp_col_rows(col, a as usize, b as usize);
            if k.descending {
                ord = ord.reverse();
            }
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    idx
}

/// Fold the values of `col` at `rows` into per-group accumulators: row
/// `rows[i]` updates `states[slots[i]]`. All states must carry the same
/// aggregate function (one kernel call per aggregate column).
/// Value-identical to calling [`AggState::update`] with `col.value(r)`
/// row by row, including `count`'s null-counting and the numeric-type
/// errors of `sum`/`avg`.
pub fn accumulate_column(
    col: &Column,
    rows: &[usize],
    slots: &[u32],
    states: &mut [AggState],
) -> Result<()> {
    debug_assert_eq!(rows.len(), slots.len());
    let func = match states.first() {
        Some(s) => s.func(),
        None => return Ok(()),
    };
    match func {
        // Count never reads the column: every row counts, null or not.
        AggFunc::Count => {
            for &slot in slots {
                if let AggState::Count(n) = &mut states[slot as usize] {
                    *n += 1;
                }
            }
            Ok(())
        }
        AggFunc::Sum | AggFunc::Avg => accumulate_numeric(col, rows, slots, states),
        // Min/max need cmp_total against the running value; the scalar
        // update is already allocation-free for non-string types.
        AggFunc::Min | AggFunc::Max => {
            for (i, &r) in rows.iter().enumerate() {
                states[slots[i] as usize].update(&col.value(r))?;
            }
            Ok(())
        }
    }
}

fn accumulate_numeric(
    col: &Column,
    rows: &[usize],
    slots: &[u32],
    states: &mut [AggState],
) -> Result<()> {
    // Typed fast paths add straight from the vector, skipping null rows
    // (SQL semantics). Bool/Str/Mixed go through the scalar update so
    // `as_float`'s type errors surface exactly as on the row path.
    macro_rules! add {
        ($v:expr, $cast:expr) => {{
            match &col.nulls {
                None => {
                    for (i, &r) in rows.iter().enumerate() {
                        add_numeric(&mut states[slots[i] as usize], $cast($v[r]));
                    }
                }
                Some(b) => {
                    for (i, &r) in rows.iter().enumerate() {
                        if b.get(r) {
                            add_numeric(&mut states[slots[i] as usize], $cast($v[r]));
                        }
                    }
                }
            }
            Ok(())
        }};
    }
    match &col.data {
        ColumnData::Int(v) => add!(v, |x: i64| x as f64),
        ColumnData::Float(v) => add!(v, |x: f64| x),
        ColumnData::Date(v) => add!(v, |x: i32| x as f64),
        _ => {
            for (i, &r) in rows.iter().enumerate() {
                states[slots[i] as usize].update(&col.value(r))?;
            }
            Ok(())
        }
    }
}

#[inline]
fn add_numeric(state: &mut AggState, x: f64) {
    match state {
        AggState::Sum(s, seen) => {
            *s += x;
            *seen = true;
        }
        AggState::Avg(s, n) => {
            *s += x;
            *n += 1;
        }
        _ => unreachable!("numeric accumulate on non-sum/avg state"),
    }
}

/// Map an `f64` to `u64` bits whose unsigned order matches IEEE total
/// order (same encoding as [`Value::to_key`]).
fn total_order_bits(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn tuples() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::Int(1), Value::str("a"), Value::Float(1.5)]),
            Tuple::new(vec![Value::Int(2), Value::Null, Value::Float(-0.5)]),
            Tuple::new(vec![Value::Int(3), Value::str("b"), Value::Null]),
            Tuple::new(vec![Value::Int(2), Value::str("a"), Value::Float(2.5)]),
        ]
    }

    #[test]
    fn roundtrip_preserves_values() {
        let rows = tuples();
        let cb = ColumnarBatch::from_tuples(&rows);
        assert_eq!(cb.num_rows(), 4);
        assert_eq!(cb.arity(), 3);
        let back = cb.to_tuples();
        assert_eq!(back, rows);
    }

    #[test]
    fn string_dictionary_shares_payloads() {
        let rows = tuples();
        let cb = ColumnarBatch::from_tuples(&rows);
        match cb.column(1).data() {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict.len(), 2, "two distinct payloads");
                assert_eq!(codes.len(), 4);
            }
            other => panic!("expected Str column, got {other:?}"),
        }
    }

    #[test]
    fn mixed_column_degrades_and_roundtrips() {
        let rows = vec![
            Tuple::new(vec![Value::Int(1)]),
            Tuple::new(vec![Value::str("x")]),
        ];
        let cb = ColumnarBatch::from_tuples(&rows);
        assert!(matches!(cb.column(0).data(), ColumnData::Mixed(_)));
        assert_eq!(cb.to_tuples(), rows);
    }

    #[test]
    fn all_null_column_roundtrips() {
        let rows = vec![Tuple::new(vec![Value::Null]), Tuple::new(vec![Value::Null])];
        let cb = ColumnarBatch::from_tuples(&rows);
        assert_eq!(cb.to_tuples(), rows);
    }

    #[test]
    fn selection_narrows_to_tuples() {
        let rows = tuples();
        let mut cb = ColumnarBatch::from_tuples(&rows);
        let mut sel = Bitmap::zeros(4);
        sel.set(1, true);
        sel.set(3, true);
        cb.select(sel);
        assert_eq!(cb.selected_rows(), 2);
        let got = cb.to_tuples();
        assert_eq!(got, vec![rows[1].clone(), rows[3].clone()]);
        // Compacting then converting gives the same rows.
        assert_eq!(cb.compact().to_tuples(), got);
    }

    #[test]
    fn predicate_matches_row_semantics() {
        let rows = tuples();
        let cb = ColumnarBatch::from_tuples(&rows);
        let preds = vec![
            Expr::cmp(Expr::Col(0), CmpOp::Ge, Expr::Lit(Value::Int(2))),
            Expr::eq(Expr::Col(1), Expr::Lit(Value::str("a"))),
            // Null float rows must not match.
            Expr::cmp(Expr::Col(2), CmpOp::Lt, Expr::Lit(Value::Float(2.0))),
            // Cross-type: int column vs float literal.
            Expr::cmp(Expr::Col(0), CmpOp::Gt, Expr::Lit(Value::Float(1.5))),
            Expr::And(vec![
                Expr::cmp(Expr::Col(0), CmpOp::Ge, Expr::Lit(Value::Int(2))),
                Expr::Not(Box::new(Expr::eq(Expr::Col(1), Expr::Lit(Value::str("b"))))),
            ]),
            Expr::Or(vec![
                Expr::eq(Expr::Col(0), Expr::Lit(Value::Int(1))),
                Expr::eq(Expr::Col(1), Expr::Lit(Value::str("b"))),
            ]),
            // Column-to-column.
            Expr::cmp(Expr::Col(0), CmpOp::Lt, Expr::Col(2)),
        ];
        for p in preds {
            let mask = eval_predicate(&p, &cb).unwrap();
            for (i, t) in rows.iter().enumerate() {
                assert_eq!(
                    mask.get(i),
                    p.matches(t).unwrap(),
                    "pred {p} row {i} ({t:?})"
                );
            }
        }
    }

    #[test]
    fn unvectorizable_predicate_errors() {
        let cb = ColumnarBatch::from_tuples(&tuples());
        let arith = Expr::cmp(
            Expr::Arith(
                Box::new(Expr::Col(0)),
                crate::expr::ArithOp::Add,
                Box::new(Expr::Lit(Value::Int(1))),
            ),
            CmpOp::Gt,
            Expr::Lit(Value::Int(2)),
        );
        assert!(eval_predicate(&arith, &cb).is_err());
    }

    #[test]
    fn group_keys_match_row_keys() {
        let rows = tuples();
        let cb = ColumnarBatch::from_tuples(&rows);
        let cols = vec![0usize, 1];
        let keys = group_keys(&cb, &cols);
        let row_keys: Vec<GroupKey> = rows.iter().map(|t| t.group_key(&cols)).collect();
        assert_eq!(keys, row_keys);
        assert_eq!(group_keys_rows(&rows, &cols), row_keys);
    }

    #[test]
    fn columnar_hashes_match_key_hashes() {
        let rows = tuples();
        let cb = ColumnarBatch::from_tuples(&rows);
        for cols in [vec![0usize], vec![1], vec![2], vec![0, 1], vec![1, 2]] {
            let mut hashes = Vec::new();
            hash_keys_into(&cb, &cols, &mut hashes);
            for (i, t) in rows.iter().enumerate() {
                assert_eq!(
                    hashes[i],
                    key_hash(&t.group_key(&cols)),
                    "cols {cols:?} row {i}"
                );
            }
        }
    }

    #[test]
    fn value_hash_and_eq_agree_with_key_forms() {
        let rows = tuples();
        let cols = vec![0usize, 1, 2];
        for t in &rows {
            assert_eq!(
                tuple_key_hash(t, &cols),
                key_hash(&t.group_key(&cols)),
                "{t:?}"
            );
            for c in 0..3 {
                assert!(value_key_eq(t.get(c), &t.key(c)));
            }
        }
        assert!(!value_key_eq(&Value::Int(1), &Key::Int(2)));
        assert!(!value_key_eq(&Value::Int(1), &Key::Float(0)));
    }

    #[test]
    fn key_elem_eq_agrees_with_key() {
        let rows = tuples();
        let cb = ColumnarBatch::from_tuples(&rows);
        for c in 0..3 {
            for r in 0..rows.len() {
                let k = rows[r].key(c);
                assert!(key_elem_eq(cb.column(c), r, &k), "col {c} row {r}");
                let other = rows[(r + 1) % rows.len()].key(c);
                assert_eq!(
                    key_elem_eq(cb.column(c), r, &other),
                    k == other,
                    "col {c} row {r} vs other"
                );
            }
        }
    }

    #[test]
    fn sort_permutation_matches_row_sort() {
        use crate::sort::sort_tuples;
        let rows = tuples();
        let cb = ColumnarBatch::from_tuples(&rows);
        for keys in [
            vec![SortKey::asc(0)],
            vec![SortKey::desc(0)],
            vec![SortKey::asc(1)], // strings with a null
            vec![SortKey::asc(2)], // floats with a null
            vec![SortKey::asc(1), SortKey::desc(0)],
            vec![SortKey::desc(2), SortKey::asc(0)],
        ] {
            let perm = sort_permutation(&cb, &keys);
            let got = cb.gather(&perm).to_tuples();
            let mut want = rows.clone();
            sort_tuples(&keys, &mut want);
            assert_eq!(got, want, "keys {keys:?}");
        }
    }

    #[test]
    fn sort_permutation_honors_selection_and_stability() {
        let rows = vec![
            Tuple::new(vec![Value::Int(2), Value::Int(0)]),
            Tuple::new(vec![Value::Int(1), Value::Int(1)]),
            Tuple::new(vec![Value::Int(2), Value::Int(2)]),
            Tuple::new(vec![Value::Int(1), Value::Int(3)]),
        ];
        let mut cb = ColumnarBatch::from_tuples(&rows);
        let mut sel = Bitmap::ones(4);
        sel.set(1, false);
        cb.select(sel);
        let perm = sort_permutation(&cb, &[SortKey::asc(0)]);
        // Row 1 is deselected; ties keep batch order (row 0 before 2).
        assert_eq!(perm, vec![3, 0, 2]);
        let sorted = cb.gather(&perm).to_tuples();
        assert_eq!(
            sorted,
            vec![rows[3].clone(), rows[0].clone(), rows[2].clone()]
        );
    }

    #[test]
    fn accumulate_matches_scalar_update() {
        let rows = tuples();
        let cb = ColumnarBatch::from_tuples(&rows);
        let idx: Vec<usize> = (0..rows.len()).collect();
        // Two groups: rows 0/2 -> slot 0, rows 1/3 -> slot 1.
        let slots: Vec<u32> = vec![0, 1, 0, 1];
        for func in [
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            for c in 0..3 {
                let mut vec_states = vec![AggState::new(func); 2];
                let vec_res = accumulate_column(cb.column(c), &idx, &slots, &mut vec_states);
                let mut row_states = vec![AggState::new(func); 2];
                let mut row_res = Ok(());
                for (t, &s) in rows.iter().zip(&slots) {
                    row_res = row_states[s as usize].update(t.get(c));
                    if row_res.is_err() {
                        break;
                    }
                }
                // Sum/avg over the string column error on both paths.
                assert_eq!(vec_res.is_err(), row_res.is_err(), "func {func} col {c}");
                if vec_res.is_ok() {
                    assert_eq!(vec_states, row_states, "func {func} col {c}");
                }
            }
        }
    }

    #[test]
    fn accumulate_preserves_type_errors() {
        let cb = ColumnarBatch::from_tuples(&tuples());
        let mut states = vec![AggState::new(AggFunc::Sum)];
        // Column 1 is strings: sum must fail like the row path does.
        assert!(accumulate_column(cb.column(1), &[0], &[0], &mut states).is_err());
    }

    #[test]
    fn bitmap_ops() {
        let mut a = Bitmap::zeros(70);
        a.set(0, true);
        a.set(69, true);
        assert_eq!(a.count_ones(), 2);
        let mut b = Bitmap::ones(70);
        b.set(0, false);
        a.and(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![69]);
        a.not();
        assert_eq!(a.count_ones(), 69);
        assert!(!a.get(69));
    }

    #[test]
    fn gather_concat_builds_join_output() {
        let left = ColumnarBatch::from_tuples(&[
            Tuple::new(vec![Value::Int(1), Value::str("l1")]),
            Tuple::new(vec![Value::Int(2), Value::str("l2")]),
        ]);
        let right = ColumnarBatch::from_tuples(&[
            Tuple::new(vec![Value::Int(1), Value::str("r1")]),
            Tuple::new(vec![Value::Int(2), Value::str("r2")]),
        ]);
        let out = ColumnarBatch::gather_concat(&left, &right, &[(0, 0), (1, 1), (0, 1)]);
        let rows = out.to_tuples();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].get(1).as_str().unwrap(), "l1");
        assert_eq!(rows[2].get(3).as_str().unwrap(), "r2");
    }

    #[test]
    fn empty_batch_edges() {
        let cb = ColumnarBatch::from_tuples(&[]);
        assert_eq!(cb.num_rows(), 0);
        assert!(cb.to_tuples().is_empty());
        let p = Expr::cmp(Expr::Col(0), CmpOp::Gt, Expr::Lit(Value::Int(0)));
        // Zero-arity empty batch has no columns; the predicate errors and
        // callers fall back (which also yields zero rows).
        assert!(eval_predicate(&p, &cb).is_err());
        let empty3 = ColumnarBatch::empty(3);
        assert_eq!(empty3.arity(), 3);
        assert!(empty3.to_tuples().is_empty());
    }
}
