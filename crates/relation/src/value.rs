//! Dynamically typed attribute values and hashable key forms.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// The data types the engine understands. Data-integration sources in the
/// paper expose relational data with simple scalar attributes; we support
/// the same set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    /// Days since an arbitrary epoch; kept distinct from `Int` so date
    /// predicates read naturally in query definitions.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Date => "date",
        };
        f.write_str(s)
    }
}

/// A single attribute value.
///
/// Strings are reference counted so tuple cloning and concatenation (which
/// every join performs) never copies string payloads — the Rust analogue of
/// the paper's "vectors of pointers to attribute value containers".
#[derive(Debug, Clone, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Date(i32),
}

impl Value {
    /// Create a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// The value's data type; `None` for `Null`.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view; dates coerce to their day number.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Date(v) => Ok(*v as i64),
            other => Err(Error::Type(format!("expected int, got {other}"))),
        }
    }

    /// Numeric view; ints and dates widen to `f64`.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::Date(v) => Ok(*v as f64),
            other => Err(Error::Type(format!("expected numeric, got {other}"))),
        }
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(Error::Type(format!("expected bool, got {other}"))),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(Error::Type(format!("expected str, got {other}"))),
        }
    }

    /// Convert to a hashable/orderable [`Key`]. All values convert; floats
    /// use a total-order bit encoding.
    pub fn to_key(&self) -> Key {
        match self {
            Value::Null => Key::Null,
            Value::Bool(b) => Key::Bool(*b),
            Value::Int(v) => Key::Int(*v),
            Value::Float(v) => Key::Float(total_order_bits(*v)),
            Value::Str(s) => Key::Str(s.clone()),
            Value::Date(d) => Key::Date(*d),
        }
    }

    /// SQL-ish comparison used by predicates and sort orders: numerics
    /// compare numerically across `Int`/`Float`/`Date`; `Null` sorts first;
    /// mismatched non-numeric types order by type rank (deterministic, never
    /// panics).
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Numeric cross-type comparisons.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Int(a), Date(b)) => a.cmp(&(*b as i64)),
            (Date(a), Int(b)) => (*a as i64).cmp(b),
            (Date(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Date(b)) => a.total_cmp(&(*b as f64)),
            // Fallback: deterministic type-rank order.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Equality consistent with [`Value::cmp_total`].
    pub fn eq_total(&self, other: &Value) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.eq_total(other)
    }
}

impl Eq for Value {}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Date(_) => 4,
        Value::Str(_) => 5,
    }
}

/// Map an `f64` to `u64` bits whose unsigned order matches IEEE total order.
fn total_order_bits(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "d{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

/// Hashable, totally ordered form of [`Value`], used as join/group keys and
/// for state-structure indexing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Key {
    Null,
    Bool(bool),
    Int(i64),
    /// Total-order bit encoding of an `f64` (see [`Value::to_key`]).
    Float(u64),
    Date(i32),
    Str(Arc<str>),
}

/// Composite key for multi-attribute grouping.
pub type GroupKey = Box<[Key]>;

/// Build a composite key from the given columns of a slice of values.
pub fn group_key(vals: &[Value], cols: &[usize]) -> GroupKey {
    cols.iter().map(|&c| vals[c].to_key()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_float_cross_compare() {
        assert_eq!(Value::Int(3).cmp_total(&Value::Float(3.0)), Ordering::Equal);
        assert_eq!(Value::Int(3).cmp_total(&Value::Float(3.5)), Ordering::Less);
        assert_eq!(
            Value::Float(4.0).cmp_total(&Value::Int(3)),
            Ordering::Greater
        );
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.cmp_total(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Null.cmp_total(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn float_total_order_bits_monotone() {
        let xs = [-f64::INFINITY, -1.5, -0.0, 0.0, 1e-300, 2.0, f64::INFINITY];
        for w in xs.windows(2) {
            assert!(total_order_bits(w[0]) <= total_order_bits(w[1]), "{w:?}");
        }
        // -0.0 < 0.0 in total order.
        assert!(total_order_bits(-0.0) < total_order_bits(0.0));
    }

    #[test]
    fn key_roundtrip_equality() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(42),
            Value::Float(1.25),
            Value::str("abc"),
            Value::Date(9131),
        ];
        for v in &vals {
            assert_eq!(v.to_key(), v.clone().to_key());
        }
        assert_ne!(Value::Int(1).to_key(), Value::Int(2).to_key());
    }

    #[test]
    fn key_order_matches_value_order_for_floats() {
        let a = Value::Float(-2.5);
        let b = Value::Float(7.0);
        assert!(a.to_key() < b.to_key());
    }

    #[test]
    fn as_int_coerces_dates() {
        assert_eq!(Value::Date(10).as_int().unwrap(), 10);
        assert!(Value::str("x").as_int().is_err());
    }

    #[test]
    fn group_key_extracts_columns() {
        let vals = vec![Value::Int(1), Value::str("a"), Value::Int(3)];
        let k = group_key(&vals, &[2, 0]);
        assert_eq!(&*k, &[Key::Int(3), Key::Int(1)]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(DataType::Date.to_string(), "date");
    }
}
