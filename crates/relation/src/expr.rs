//! Scalar expressions and predicates for select-project-join-aggregate
//! queries (the query model of the paper's optimizer, §4.3).

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(self, ord: Ordering, eq: bool) -> bool {
        match self {
            CmpOp::Eq => eq,
            CmpOp::Ne => !eq,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators (used by derived measures such as
/// `l_extendedprice * (1 - l_discount)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression over one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by position.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Comparison; evaluates to `Bool`.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
    Not(Box<Expr>),
    /// Arithmetic on numerics (result is `Float` unless both are `Int` and
    /// the op is not `Div`).
    Arith(Box<Expr>, ArithOp, Box<Expr>),
}

impl Expr {
    /// Column reference resolved by name against a schema.
    pub fn col_named(schema: &Schema, name: &str) -> Result<Expr> {
        Ok(Expr::Col(schema.index_of(name)?))
    }

    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(lhs), CmpOp::Eq, Box::new(rhs))
    }

    pub fn cmp(lhs: Expr, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(lhs), op, Box::new(rhs))
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, t: &Tuple) -> Result<Value> {
        match self {
            Expr::Col(i) => {
                if *i >= t.arity() {
                    return Err(Error::Exec(format!(
                        "column {i} out of range for tuple of arity {}",
                        t.arity()
                    )));
                }
                Ok(t.get(*i).clone())
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(l, op, r) => {
                let lv = l.eval(t)?;
                let rv = r.eval(t)?;
                if lv.is_null() || rv.is_null() {
                    // SQL three-valued logic collapsed to false for
                    // filtering purposes.
                    return Ok(Value::Bool(false));
                }
                let ord = lv.cmp_total(&rv);
                Ok(Value::Bool(op.eval(ord, ord == Ordering::Equal)))
            }
            Expr::And(es) => {
                for e in es {
                    if !e.eval(t)?.as_bool()? {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(Value::Bool(true))
            }
            Expr::Or(es) => {
                for e in es {
                    if e.eval(t)?.as_bool()? {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            Expr::Not(e) => Ok(Value::Bool(!e.eval(t)?.as_bool()?)),
            Expr::Arith(l, op, r) => {
                let lv = l.eval(t)?;
                let rv = r.eval(t)?;
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                eval_arith(&lv, *op, &rv)
            }
        }
    }

    /// Evaluate as a predicate.
    pub fn matches(&self, t: &Tuple) -> Result<bool> {
        self.eval(t)?.as_bool()
    }

    /// All column indices referenced by this expression.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) => {}
            Expr::Cmp(l, _, r) | Expr::Arith(l, _, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_columns(out);
                }
            }
            Expr::Not(e) => e.collect_columns(out),
        }
    }

    /// Rewrite column indices through a mapping (`new_index = f(old_index)`),
    /// used when predicates are pushed through projections or when a plan is
    /// re-rooted over a different physical layout.
    pub fn remap_columns(&self, f: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(f(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(l, op, r) => Expr::Cmp(
                Box::new(l.remap_columns(f)),
                *op,
                Box::new(r.remap_columns(f)),
            ),
            Expr::And(es) => Expr::And(es.iter().map(|e| e.remap_columns(f)).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(|e| e.remap_columns(f)).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(f))),
            Expr::Arith(l, op, r) => Expr::Arith(
                Box::new(l.remap_columns(f)),
                *op,
                Box::new(r.remap_columns(f)),
            ),
        }
    }
}

fn eval_arith(l: &Value, op: ArithOp, r: &Value) -> Result<Value> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        match op {
            ArithOp::Add => return Ok(Value::Int(a.wrapping_add(*b))),
            ArithOp::Sub => return Ok(Value::Int(a.wrapping_sub(*b))),
            ArithOp::Mul => return Ok(Value::Int(a.wrapping_mul(*b))),
            ArithOp::Div => {} // fall through to float division
        }
    }
    let a = l.as_float()?;
    let b = r.as_float()?;
    let v = match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => a / b,
    };
    Ok(Value::Float(v))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "${i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(l, op, r) => write!(f, "({l} {op} {r})"),
            Expr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Arith(l, op, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn comparison_and_logic() {
        let row = t(vec![Value::Int(5), Value::str("BUILDING")]);
        let p = Expr::And(vec![
            Expr::cmp(Expr::Col(0), CmpOp::Gt, Expr::Lit(Value::Int(3))),
            Expr::eq(Expr::Col(1), Expr::Lit(Value::str("BUILDING"))),
        ]);
        assert!(p.matches(&row).unwrap());
        let q = Expr::Not(Box::new(p));
        assert!(!q.matches(&row).unwrap());
    }

    #[test]
    fn or_short_circuits_true() {
        let row = t(vec![Value::Int(1)]);
        let p = Expr::Or(vec![
            Expr::eq(Expr::Col(0), Expr::Lit(Value::Int(1))),
            Expr::eq(Expr::Col(0), Expr::Lit(Value::Int(2))),
        ]);
        assert!(p.matches(&row).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let row = t(vec![Value::Null]);
        let p = Expr::eq(Expr::Col(0), Expr::Lit(Value::Int(1)));
        assert!(!p.matches(&row).unwrap());
        let p2 = Expr::cmp(Expr::Col(0), CmpOp::Ne, Expr::Lit(Value::Int(1)));
        assert!(!p2.matches(&row).unwrap());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let row = t(vec![Value::Int(10), Value::Float(0.25)]);
        // 10 * (1 - 0.25) = 7.5
        let e = Expr::Arith(
            Box::new(Expr::Col(0)),
            ArithOp::Mul,
            Box::new(Expr::Arith(
                Box::new(Expr::Lit(Value::Float(1.0))),
                ArithOp::Sub,
                Box::new(Expr::Col(1)),
            )),
        );
        assert_eq!(e.eval(&row).unwrap().as_float().unwrap(), 7.5);
        // Int division promotes to float.
        let d = Expr::Arith(
            Box::new(Expr::Col(0)),
            ArithOp::Div,
            Box::new(Expr::Lit(Value::Int(4))),
        );
        assert_eq!(d.eval(&row).unwrap().as_float().unwrap(), 2.5);
    }

    #[test]
    fn arithmetic_with_null_is_null() {
        let row = t(vec![Value::Null]);
        let e = Expr::Arith(
            Box::new(Expr::Col(0)),
            ArithOp::Add,
            Box::new(Expr::Lit(Value::Int(1))),
        );
        assert!(e.eval(&row).unwrap().is_null());
    }

    #[test]
    fn columns_are_collected_and_deduped() {
        let e = Expr::And(vec![
            Expr::eq(Expr::Col(2), Expr::Col(0)),
            Expr::cmp(Expr::Col(2), CmpOp::Lt, Expr::Lit(Value::Int(9))),
        ]);
        assert_eq!(e.columns(), vec![0, 2]);
    }

    #[test]
    fn remap_columns_applies_function() {
        let e = Expr::eq(Expr::Col(1), Expr::Col(3));
        let r = e.remap_columns(&|c| c + 10);
        assert_eq!(r.columns(), vec![11, 13]);
    }

    #[test]
    fn out_of_range_column_is_error() {
        let row = t(vec![Value::Int(1)]);
        assert!(Expr::Col(5).eval(&row).is_err());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::eq(Expr::Col(0), Expr::Lit(Value::Int(7)));
        assert_eq!(e.to_string(), "($0 = 7)");
    }
}
