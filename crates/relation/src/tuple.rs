//! Immutable, cheaply clonable tuples and the tuple adapters of paper §3.2.

use std::fmt;
use std::sync::Arc;

use crate::value::{group_key, GroupKey, Key, Value};

/// An immutable row. Cloning is a reference-count bump; joins concatenate by
/// building a fresh value vector whose string payloads are shared.
#[derive(Clone, PartialEq)]
pub struct Tuple {
    vals: Arc<[Value]>,
}

impl Tuple {
    pub fn new(vals: Vec<Value>) -> Tuple {
        Tuple { vals: vals.into() }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.vals.len()
    }

    /// Attribute accessor. Panics on out-of-range (schemas are validated at
    /// plan time, so an out-of-range access is an engine bug).
    pub fn get(&self, i: usize) -> &Value {
        &self.vals[i]
    }

    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Concatenate two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.vals.len() + other.vals.len());
        v.extend_from_slice(&self.vals);
        v.extend_from_slice(&other.vals);
        Tuple::new(v)
    }

    /// Project to the given columns (in the given order).
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.vals[c].clone()).collect())
    }

    /// Single-column key extraction (join keys).
    pub fn key(&self, col: usize) -> Key {
        self.vals[col].to_key()
    }

    /// Multi-column key extraction (grouping keys).
    pub fn group_key(&self, cols: &[usize]) -> GroupKey {
        group_key(&self.vals, cols)
    }

    /// Rough in-memory footprint in bytes, used by the source bandwidth
    /// models and spill accounting.
    pub fn approx_bytes(&self) -> usize {
        let mut n = std::mem::size_of::<Value>() * self.vals.len();
        for v in self.vals.iter() {
            if let Value::Str(s) = v {
                n += s.len();
            }
        }
        n
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.vals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Permutes attributes between two physical layouts of the same logical
/// schema (paper §3.2).
///
/// The physical schema produced by `(A ⋈ (B ⋈ C))` differs from
/// `(B ⋈ (C ⋈ A))` only in attribute order; an adapter lets a state
/// structure built by one plan be probed by another plan without copying
/// the stored tuples eagerly — the permutation is applied as tuples are
/// read out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleAdapter {
    /// `mapping[i]` = index in the *source* layout of the attribute that
    /// belongs at position `i` of the *target* layout.
    mapping: Vec<usize>,
}

impl TupleAdapter {
    /// Identity adapter of the given arity.
    pub fn identity(arity: usize) -> TupleAdapter {
        TupleAdapter {
            mapping: (0..arity).collect(),
        }
    }

    /// Build from an explicit mapping; `mapping[i]` is the source position
    /// of target attribute `i`.
    pub fn new(mapping: Vec<usize>) -> TupleAdapter {
        TupleAdapter { mapping }
    }

    /// Whether adapting is a no-op.
    pub fn is_identity(&self) -> bool {
        self.mapping.iter().enumerate().all(|(i, &m)| i == m)
    }

    pub fn mapping(&self) -> &[usize] {
        &self.mapping
    }

    /// Apply the permutation.
    pub fn adapt(&self, t: &Tuple) -> Tuple {
        if self.is_identity() {
            return t.clone();
        }
        t.project(&self.mapping)
    }

    /// Compose: apply `self` after `first`.
    pub fn compose(&self, first: &TupleAdapter) -> TupleAdapter {
        TupleAdapter {
            mapping: self.mapping.iter().map(|&m| first.mapping[m]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn concat_preserves_order() {
        let a = t(&[1, 2]);
        let b = t(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2).as_int().unwrap(), 3);
    }

    #[test]
    fn project_reorders() {
        let a = t(&[10, 20, 30]);
        let p = a.project(&[2, 0]);
        assert_eq!(p.values().len(), 2);
        assert_eq!(p.get(0).as_int().unwrap(), 30);
        assert_eq!(p.get(1).as_int().unwrap(), 10);
    }

    #[test]
    fn adapter_identity_is_noop() {
        let a = TupleAdapter::identity(3);
        assert!(a.is_identity());
        let x = t(&[1, 2, 3]);
        assert_eq!(a.adapt(&x), x);
    }

    #[test]
    fn adapter_permutes() {
        // Target layout wants source columns [2,0,1].
        let a = TupleAdapter::new(vec![2, 0, 1]);
        let x = t(&[10, 20, 30]);
        let y = a.adapt(&x);
        assert_eq!(
            y.values()
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![30, 10, 20]
        );
    }

    #[test]
    fn adapter_compose_matches_sequential_application() {
        let first = TupleAdapter::new(vec![1, 2, 0]);
        let second = TupleAdapter::new(vec![2, 1, 0]);
        let composed = second.compose(&first);
        let x = t(&[10, 20, 30]);
        assert_eq!(composed.adapt(&x), second.adapt(&first.adapt(&x)));
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let short = Tuple::new(vec![Value::Int(1)]);
        let long = Tuple::new(vec![Value::str("hello world, a longer payload")]);
        assert!(long.approx_bytes() > short.approx_bytes());
    }

    #[test]
    fn clone_is_shallow() {
        let a = t(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.vals, &b.vals));
    }
}
