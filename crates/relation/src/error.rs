//! Error type shared by the whole workspace.

use std::fmt;

/// Errors raised anywhere in the engine.
#[derive(Debug)]
pub enum Error {
    /// A name could not be resolved against a schema, or two schemas were
    /// incompatible.
    Schema(String),
    /// A value had the wrong type for the requested operation.
    Type(String),
    /// A logical or physical plan was malformed.
    Plan(String),
    /// A runtime execution failure.
    Exec(String),
    /// An I/O failure (spill files, data loading).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Exec(m) => write!(f, "execution error: {m}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::Schema("x".into()).to_string().contains("schema"));
        assert!(Error::Type("x".into()).to_string().contains("type"));
        assert!(Error::Plan("x".into()).to_string().contains("plan"));
        assert!(Error::Exec("x".into()).to_string().contains("execution"));
        let io = Error::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error as _;
        let io = Error::from(std::io::Error::other("boom"));
        assert!(io.source().is_some());
        assert!(Error::Plan("p".into()).source().is_none());
    }
}
