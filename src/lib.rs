//! # tukwila — adaptive data partitioning for data integration queries
//!
//! A from-scratch Rust implementation of the SIGMOD 2004 paper
//! *Adapting to Source Properties in Processing Data Integration Queries*
//! (Ives, Halevy, Weld): corrective query processing with mid-pipeline
//! plan switching and stitch-up, complementary join pairs over
//! (mostly-)sorted sources, and adjustable-window pre-aggregation.
//!
//! This crate is a facade re-exporting the workspace members; see the
//! README for the architecture overview and `DESIGN.md` / `EXPERIMENTS.md`
//! for the paper mapping.
//!
//! ```no_run
//! use tukwila::core::{CorrectiveConfig, CorrectiveExec};
//! use tukwila::datagen::{queries, Dataset, DatasetConfig};
//! use tukwila::source::{MemSource, Source};
//!
//! let data = Dataset::generate(DatasetConfig::uniform(0.01));
//! let query = queries::q3a();
//! let mut sources: Vec<Box<dyn Source>> = queries::tables_of(&query)
//!     .into_iter()
//!     .map(|t| {
//!         Box::new(MemSource::new(
//!             t.rel_id(),
//!             t.name(),
//!             Dataset::schema(t),
//!             data.table(t).to_vec(),
//!         )) as Box<dyn Source>
//!     })
//!     .collect();
//! let report = CorrectiveExec::new(query, CorrectiveConfig::default())
//!     .run(&mut sources)
//!     .unwrap();
//! println!("{} phases, {} groups", report.phase_count(), report.rows.len());
//! ```

/// The ADP runtime: corrective query processing, stitch-up, complementary
/// join pairs, baselines.
pub use tukwila_core as core;
/// TPC-H-style synthetic data and the paper's query workload.
pub use tukwila_datagen as datagen;
/// Pipelined operators and the incremental execution engine.
pub use tukwila_exec as exec;
/// Federated source catalog, per-source behavior profiles, and online
/// source-permutation scheduling over mirrored/replicated sources.
pub use tukwila_federation as federation;
/// The System-R-flavoured optimizer / re-optimizer.
pub use tukwila_optimizer as optimizer;
/// Tuples, schemas, expressions, mergeable aggregates.
pub use tukwila_relation as relation;
/// Multi-query serving front end: shared learning catalog, global core
/// arbiter, fleet metrics.
pub use tukwila_serve as serve;
/// Simulated sequential sources under a virtual clock.
pub use tukwila_source as source;
/// Runtime statistics: selectivities, histograms, order detection.
pub use tukwila_stats as stats;
/// State structures and the state-structure registry.
pub use tukwila_storage as storage;

pub use tukwila_serve::{FleetReport, QueryOutcome, QuerySpec, ServeMode, Server, ServerConfig};
